"""Peephole optimization passes (the "Qiskit optimizations" baseline).

Implements the optimization classes the paper attributes to the Qiskit
pipeline (Sec. 1.2): collapsing adjacent one-qubit gates, deleting gates
using unitary/commutativity rules, and consolidating two-qubit runs for
KAK-style resynthesis.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import Circuit, Operation
from repro.circuits.gates import Gate
from repro.linalg.su2 import ANGLE_ATOL, is_identity_angles, zyz_decompose

#: One-qubit gate names the merge pass accumulates.
_ONE_QUBIT_UNITARIES = frozenset(
    {"id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "rx", "ry", "rz",
     "p", "u1", "u2", "u3", "u"}
)


def _emit_zyz(circuit: Circuit, qubit: int, matrix: np.ndarray) -> None:
    theta, phi, lam, _ = zyz_decompose(matrix)
    if is_identity_angles(theta, phi, lam):
        return
    if abs(math.remainder(theta, 2.0 * math.pi)) < ANGLE_ATOL:
        circuit.rz(phi + lam, qubit)
        return
    if abs(math.remainder(lam, 2.0 * math.pi)) > ANGLE_ATOL:
        circuit.rz(lam, qubit)
    circuit.ry(theta, qubit)
    if abs(math.remainder(phi, 2.0 * math.pi)) > ANGLE_ATOL:
        circuit.rz(phi, qubit)


def merge_one_qubit_gates(circuit: Circuit) -> Circuit:
    """Collapse every run of adjacent one-qubit gates into <= 3 rotations.

    Runs are accumulated as 2x2 matrices and re-emitted in ZYZ form;
    identity products disappear entirely.
    """
    out = Circuit(circuit.num_qubits)
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is not None:
            _emit_zyz(out, qubit, matrix)

    for op in circuit.operations:
        if op.name in _ONE_QUBIT_UNITARIES and len(op.qubits) == 1:
            qubit = op.qubits[0]
            accumulated = pending.get(qubit)
            matrix = op.gate.matrix()
            pending[qubit] = matrix if accumulated is None else matrix @ accumulated
            continue
        if op.name == "barrier":
            for qubit in list(pending):
                flush(qubit)
            out.barrier()
            continue
        for qubit in op.qubits:
            flush(qubit)
        out.append(op)
    for qubit in list(pending):
        flush(qubit)
    return out


def _commutes_on_control(op: Operation, qubit: int) -> bool:
    """Whether ``op`` commutes with a CX whose *control* is ``qubit``."""
    if op.name in ("rz", "p", "u1", "z", "s", "sdg", "t", "tdg"):
        return op.qubits[0] == qubit
    if op.name == "cx":
        return op.qubits[0] == qubit and qubit not in op.qubits[1:]
    return False


def _commutes_on_target(op: Operation, qubit: int) -> bool:
    """Whether ``op`` commutes with a CX whose *target* is ``qubit``."""
    if op.name in ("rx", "x", "sx"):
        return op.qubits[0] == qubit
    if op.name == "cx":
        return op.qubits[1] == qubit and qubit != op.qubits[0]
    return False


def cancel_adjacent_cx(circuit: Circuit) -> Circuit:
    """Delete CX pairs that meet with nothing non-commuting in between.

    Uses the standard commutation rules: Z-like rotations and shared-control
    CXs commute on the control; X-like rotations and shared-target CXs
    commute on the target.  This subsumes plain adjacent-pair cancellation
    and is the pass that gives the Qiskit baseline its CNOT reductions.
    """
    kept: list[Operation | None] = []
    for op in circuit.operations:
        if op.name != "cx":
            kept.append(op)
            continue
        control, target = op.qubits
        cancelled = False
        for index in range(len(kept) - 1, -1, -1):
            earlier = kept[index]
            if earlier is None:
                continue
            if earlier.name == "barrier" or earlier.name == "measure":
                break
            touches_control = control in earlier.qubits
            touches_target = target in earlier.qubits
            if not (touches_control or touches_target):
                continue
            if (
                earlier.name == "cx"
                and earlier.qubits == (control, target)
            ):
                kept[index] = None
                cancelled = True
                break
            ok = True
            if touches_control and not _commutes_on_control(earlier, control):
                ok = False
            if touches_target and not _commutes_on_target(earlier, target):
                ok = False
            if not ok:
                break
        if not cancelled:
            kept.append(op)
    out = Circuit(circuit.num_qubits)
    for op in kept:
        if op is not None:
            out.append(op)
    return out


def remove_identity_rotations(circuit: Circuit) -> Circuit:
    """Drop rotations whose angle is a multiple of 2*pi (numerically)."""
    out = Circuit(circuit.num_qubits)
    for op in circuit.operations:
        if (
            op.name in ("rx", "ry", "rz", "p", "u1")
            and abs(math.remainder(op.params[0], 2.0 * math.pi)) < ANGLE_ATOL
        ):
            continue
        out.append(op)
    return out


def consolidate_two_qubit_runs(
    circuit: Circuit,
    min_run_cnots: int = 2,
    rng: np.random.Generator | int | None = None,
) -> Circuit:
    """Resynthesize maximal same-pair runs through the 2-qubit decomposer.

    Finds maximal runs of operations confined to one qubit pair, computes
    the run's 4x4 unitary, and re-emits it with at most 3 CNOTs when that
    is strictly cheaper.  This is the Qiskit ``ConsolidateBlocks`` +
    KAK-resynthesis step.
    """
    from repro.synthesis.two_qubit import decompose_two_qubit

    rng = np.random.default_rng(rng)
    ops = list(circuit.operations)
    out = Circuit(circuit.num_qubits)
    index = 0
    while index < len(ops):
        op = ops[index]
        if op.name != "cx":
            out.append(op)
            index += 1
            continue
        pair = frozenset(op.qubits)
        run: list[Operation] = [op]
        deferred: list[Operation] = []
        scan = index + 1
        while scan < len(ops):
            candidate = ops[scan]
            if candidate.name in ("measure", "barrier"):
                break
            touched = set(candidate.qubits)
            if touched <= pair:
                run.append(candidate)
            elif touched & pair:
                break
            else:
                deferred.append(candidate)
            scan += 1
        run_cnots = sum(1 for r in run if r.name == "cx")
        if run_cnots >= min_run_cnots:
            low, high = sorted(pair)
            local = Circuit(2)
            mapping = {low: 0, high: 1}
            for run_op in run:
                local.append(
                    Operation(
                        run_op.gate, tuple(mapping[q] for q in run_op.qubits)
                    )
                )
            replacement = decompose_two_qubit(local.unitary(), rng=rng)
            if replacement.cnot_count() < run_cnots:
                inverse = {0: low, 1: high}
                for rep_op in replacement.operations:
                    out.append(
                        Operation(
                            rep_op.gate,
                            tuple(inverse[q] for q in rep_op.qubits),
                        )
                    )
            else:
                out.extend(run)
        else:
            out.extend(run)
        out.extend(deferred)
        index = scan
    return out
