"""Sharded multi-tenant artifact store (the cache's disk tier)."""

from repro.exceptions import StoreError
from repro.store.artifact import (
    DEFAULT_GRACE_SECONDS,
    DEFAULT_NAMESPACE,
    ENTRY_SUFFIX,
    SHARD_CHARS,
    TMP_SUFFIX,
    ArtifactStore,
    namespace_for_tenant,
    shard_of,
    validate_namespace,
)

__all__ = [
    "ArtifactStore",
    "DEFAULT_GRACE_SECONDS",
    "DEFAULT_NAMESPACE",
    "ENTRY_SUFFIX",
    "SHARD_CHARS",
    "StoreError",
    "TMP_SUFFIX",
    "namespace_for_tenant",
    "shard_of",
    "validate_namespace",
]
