"""Sharded, multi-tenant, multi-process artifact store.

One :class:`ArtifactStore` manages the on-disk tier that several daemon
replicas (and every thread inside each of them) can share.  It subsumes
what used to be the flat ``PoolCache`` disk directory, with three
structural upgrades:

**Sharding.**  Entries live under prefix directories derived from the
entry key — ``<root>/<namespace>/<shard>/<key>.qpool`` where ``shard``
is the first :data:`SHARD_CHARS` hex characters of the key.  Keys are
SHA-256 digests, so entries spread uniformly over at most 256 shards and
any maintenance scan (eviction, orphan sweep) touches one small
directory instead of the whole tier.

**Namespaces.**  Every store instance is bound to one *namespace* (for
the compilation service: the tenant), which scopes both the directory
tree and the per-namespace quota.  Two tenants never observe each
other's artifacts even when their circuits hash identically, and one
tenant filling its quota cannot evict another tenant's entries.
:func:`namespace_for_tenant` derives a filesystem-safe namespace from an
arbitrary tenant string.

**Cross-process safety.**  N replicas sharing one root is the supported
deployment, so every mutation tolerates concurrent mutators in other
processes:

* *Publish* writes to a :func:`tempfile.mkstemp` file inside the target
  shard (unique per writer — two threads of one process, or two
  processes, can publish the same key simultaneously without clobbering
  each other's temp file) and ``os.replace``\\ s it into place, so a
  reader only ever observes a complete entry under its final name.
* *Open* sweeps crash orphans: temp files older than the grace window
  were abandoned by a writer that died mid-publish and are deleted;
  younger ones may belong to a live writer and are left alone.
* *Eviction* is guarded by mtime: an entry younger than
  ``grace_seconds`` is never deleted, so a concurrent publisher or
  LRU-refreshing reader in another replica cannot have its entry
  evicted out from under it in the instant it is created or touched.
  Losing any other race (an entry vanishing mid-scan) costs a future
  recomputation, never correctness.

Eviction approximates a *global* LRU while scanning only one shard at a
time: the store keeps a per-shard ``(count, oldest mtime)`` table (built
once per process, then maintained incrementally), picks the shard whose
oldest entry is globally oldest, and scans just that shard.  All file
I/O happens outside the store lock — the lock only guards counters and
the shard table — so concurrent readers never stall behind an eviction
scan.
"""

from __future__ import annotations

import contextlib
import os
import re
import tempfile
import threading
import time
from pathlib import Path

from repro.exceptions import StoreError
from repro.observability import get_metrics, get_tracer

#: Namespace used when none is given (solo runs, un-tenanted clients).
DEFAULT_NAMESPACE = "default"

#: Hex characters of the entry key that name the shard directory.
SHARD_CHARS = 2

#: Entries (and orphaned temp files) younger than this are never
#: evicted/swept: a concurrent writer in another process may still be
#: publishing or refreshing them.
DEFAULT_GRACE_SECONDS = 60.0

#: Final-name suffix of a published entry.
ENTRY_SUFFIX = ".qpool"

#: Suffix of in-flight (not yet renamed) publish temp files.
TMP_SUFFIX = ".tmp"

_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_namespace(namespace: str) -> str:
    """Return ``namespace`` if it is a safe single path component.

    Namespaces become directory names shared by multiple processes, so
    they must be non-empty, at most 64 characters, start with an
    alphanumeric, and contain only ``[A-Za-z0-9._-]`` — which also rules
    out ``.``/``..`` and path separators.  Raises :class:`StoreError`
    otherwise.
    """
    if not isinstance(namespace, str) or not _NAMESPACE_RE.match(namespace):
        raise StoreError(
            f"invalid store namespace {namespace!r}: must match "
            "[A-Za-z0-9][A-Za-z0-9._-]{0,63}"
        )
    return namespace


def namespace_for_tenant(tenant: str | None) -> str:
    """Derive a valid namespace from an arbitrary tenant string.

    Characters outside the allowed set map to ``_``, leading
    non-alphanumerics are stripped, and the result is capped at 64
    characters; an empty derivation falls back to
    :data:`DEFAULT_NAMESPACE`.  The mapping is deterministic, so the
    same tenant always lands in the same namespace.
    """
    cleaned = re.sub(r"[^A-Za-z0-9._-]", "_", tenant or "")
    cleaned = cleaned.lstrip("._-")[:64]
    if not cleaned:
        return DEFAULT_NAMESPACE
    return validate_namespace(cleaned)


def shard_of(key: str) -> str:
    """The shard directory name for ``key`` (its first hex chars)."""
    prefix = str(key)[:SHARD_CHARS].lower()
    return prefix.ljust(SHARD_CHARS, "0")


class ArtifactStore:
    """One namespace's sharded on-disk artifact tier.

    ``hits``/``misses`` count :meth:`load` probes (a hit means a file
    existed and was read — integrity is the caller's business),
    ``evictions`` counts entries deleted to honour ``max_entries``, and
    ``orphans_swept`` counts abandoned temp files removed at open.
    All counters are instance-lifetime and also emitted as
    ``store.{hits,misses,evictions}.<namespace>`` metrics when an
    ambient :class:`~repro.observability.MetricsRegistry` is enabled.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        namespace: str = DEFAULT_NAMESPACE,
        max_entries: int | None = None,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
        sweep_on_open: bool = True,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if grace_seconds < 0:
            raise ValueError(
                f"grace_seconds must be >= 0, got {grace_seconds}"
            )
        self.root = Path(root)
        self.namespace = validate_namespace(namespace)
        #: Per-namespace quota on published entries (None = unbounded).
        self.max_entries = max_entries
        self.grace_seconds = float(grace_seconds)
        self._dir = self.root / self.namespace
        self._dir.mkdir(parents=True, exist_ok=True)
        # The lock guards counters and the shard table only — never
        # held across file I/O.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.publishes = 0
        self.orphans_swept = 0
        #: shard name -> [entry count, oldest entry mtime].  Built by
        #: one full scan the first time eviction needs it, then
        #: maintained incrementally; other replicas' activity makes it
        #: approximate, and every shard scan re-trues its row.
        self._shard_meta: dict[str, list[float]] = {}
        self._meta_ready = False
        if sweep_on_open:
            self.sweep_orphans()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """This namespace's directory (``root/namespace``)."""
        return self._dir

    def path_for(self, key: str) -> Path:
        """The final on-disk path of entry ``key``."""
        return self._dir / shard_of(key) / f"{key}{ENTRY_SUFFIX}"

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)
        metrics = get_metrics()
        if metrics.is_enabled:
            metrics.inc(f"store.{counter}.{self.namespace}", amount)

    def counters(self) -> dict:
        """Snapshot of this instance's counters (JSON-ready)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "publishes": self.publishes,
                "orphans_swept": self.orphans_swept,
            }

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def load(self, key: str) -> bytes | None:
        """Raw bytes of entry ``key``, or None when absent/unreadable."""
        try:
            raw = self.path_for(key).read_bytes()
        except OSError:
            self._count("misses")
            return None
        self._count("hits")
        return raw

    def touch(self, key: str) -> None:
        """LRU refresh: bump ``key``'s mtime so eviction sees it as young."""
        with contextlib.suppress(OSError):
            os.utime(self.path_for(key))

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def publish(self, key: str, blob: bytes) -> bool:
        """Atomically publish ``blob`` as entry ``key``.

        Safe against concurrent publishers of the same key in this or
        any other process: each writer owns a unique temp file and the
        final ``os.replace`` is atomic, so readers see either the old
        complete entry or the new complete entry, never a mix.  Returns
        False when the disk tier is unavailable (best-effort semantics:
        the caller's in-memory tier still serves the current run).
        """
        shard = shard_of(key)
        shard_dir = self._dir / shard
        path = shard_dir / f"{key}{ENTRY_SUFFIX}"
        tmp = None
        try:
            shard_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=shard_dir, prefix=f".{key[:16]}-", suffix=TMP_SUFFIX
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            existed = path.exists()
            os.replace(tmp, path)
        except OSError:
            if tmp is not None:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
            return False
        now = time.time()
        with self._lock:
            self.publishes += 1
            if self._meta_ready:
                meta = self._shard_meta.setdefault(shard, [0, now])
                if not existed:
                    meta[0] += 1
                meta[1] = min(meta[1], now)
        metrics = get_metrics()
        if metrics.is_enabled:
            metrics.inc(f"store.publishes.{self.namespace}")
        if self.max_entries is not None:
            self.evict()
        return True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def sweep_orphans(self) -> int:
        """Delete temp files abandoned by crashed writers.

        A temp file older than the grace window can no longer belong to
        a live publish (publishes are short); one younger might, and is
        left for the next sweep.  Returns the number removed.
        """
        cutoff = time.time() - self.grace_seconds
        swept = 0
        for directory in (self._dir, *self._shard_dirs()):
            try:
                entries = list(os.scandir(directory))
            except OSError:
                continue
            for entry in entries:
                if not entry.name.endswith(TMP_SUFFIX):
                    continue
                try:
                    if entry.is_file() and entry.stat().st_mtime <= cutoff:
                        os.unlink(entry.path)
                        swept += 1
                except OSError:
                    continue  # Another replica's sweep won the race.
        if swept:
            self._count("orphans_swept", swept)
            tracer = get_tracer()
            if tracer.is_enabled:
                tracer.event(
                    "store.orphans_swept",
                    namespace=self.namespace,
                    count=swept,
                )
        return swept

    def _shard_dirs(self) -> list[Path]:
        try:
            entries = list(os.scandir(self._dir))
        except OSError:
            return []
        return [Path(e.path) for e in entries if e.is_dir()]

    def _scan_shard(self, shard: str) -> list[tuple[float, Path]]:
        """(mtime, path) of every entry in ``shard``, oldest first."""
        entries: list[tuple[float, Path]] = []
        try:
            listing = list(os.scandir(self._dir / shard))
        except OSError:
            return entries
        for item in listing:
            if not item.name.endswith(ENTRY_SUFFIX):
                continue
            try:
                entries.append((item.stat().st_mtime, Path(item.path)))
            except OSError:
                continue  # Evicted or replaced under us: skip.
        entries.sort(key=lambda pair: (pair[0], pair[1].name))
        return entries

    def _ensure_meta(self) -> None:
        """Build the shard table with one full scan (once per process)."""
        with self._lock:
            if self._meta_ready:
                return
        meta: dict[str, list[float]] = {}
        for shard_dir in self._shard_dirs():
            scanned = self._scan_shard(shard_dir.name)
            if scanned:
                meta[shard_dir.name] = [len(scanned), scanned[0][0]]
        with self._lock:
            if not self._meta_ready:
                self._shard_meta = meta
                self._meta_ready = True

    def entry_count(self) -> int:
        """Entries currently believed to exist in this namespace."""
        self._ensure_meta()
        with self._lock:
            return int(sum(meta[0] for meta in self._shard_meta.values()))

    def evict(self) -> int:
        """Restore the ``max_entries`` bound; returns entries deleted.

        Victim choice approximates global LRU: each round scans only
        the shard whose oldest entry is globally oldest.  Entries
        younger than the grace window are never deleted — when even the
        globally-oldest entry is inside the window, every entry is, and
        the bound is temporarily allowed to overshoot rather than risk
        deleting what a concurrent replica just published or touched.
        """
        if self.max_entries is None:
            return 0
        self._ensure_meta()
        total_evicted = 0
        while True:
            with self._lock:
                total = sum(meta[0] for meta in self._shard_meta.values())
                excess = int(total) - self.max_entries
                if excess <= 0:
                    break
                candidates = [
                    (meta[1], shard)
                    for shard, meta in self._shard_meta.items()
                    if meta[0] > 0
                ]
                if not candidates:
                    break
                _, shard = min(candidates)
            # All file I/O below runs without the lock held.
            scanned = self._scan_shard(shard)
            cutoff = time.time() - self.grace_seconds
            evicted = 0
            survivors = list(scanned)
            for mtime, path in scanned:
                if evicted >= excess:
                    break
                if mtime > cutoff:
                    break  # Oldest-first: everything after is younger.
                try:
                    os.unlink(path)
                except OSError:
                    continue  # Another replica evicted it first.
                survivors.remove((mtime, path))
                evicted += 1
            with self._lock:
                if survivors:
                    self._shard_meta[shard] = [
                        len(survivors), survivors[0][0]
                    ]
                else:
                    self._shard_meta.pop(shard, None)
                self.evictions += evicted
            total_evicted += evicted
            if evicted == 0:
                # The globally-oldest shard had nothing evictable
                # (grace window or lost races): stop for this round.
                break
        if total_evicted:
            metrics = get_metrics()
            if metrics.is_enabled:
                metrics.inc(
                    f"store.evictions.{self.namespace}", total_evicted
                )
                # Legacy alias kept for pre-store dashboards/tests.
                metrics.inc("cache.evictions", total_evicted)
            tracer = get_tracer()
            if tracer.is_enabled:
                tracer.event(
                    "store.evict",
                    namespace=self.namespace,
                    count=total_evicted,
                )
        return total_evicted
