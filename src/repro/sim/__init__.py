"""Ideal simulators: statevector evolution and dense circuit unitaries."""

from repro.sim.expectation import (
    DEFAULT_SHOTS,
    diagonal_expectation,
    sampled_distribution,
    z_string_expectation,
)
from repro.sim.readout import (
    distribution_over_cbits,
    logical_distribution,
    measurement_map,
)
from repro.sim.statevector import (
    counts_to_distribution,
    ideal_distribution,
    probabilities,
    run_statevector,
    sample_counts,
    zero_state,
)
from repro.sim.unitary import MAX_UNITARY_QUBITS, circuit_unitary

__all__ = [
    "z_string_expectation",
    "diagonal_expectation",
    "sampled_distribution",
    "DEFAULT_SHOTS",
    "logical_distribution",
    "distribution_over_cbits",
    "measurement_map",
    "zero_state",
    "run_statevector",
    "probabilities",
    "ideal_distribution",
    "sample_counts",
    "counts_to_distribution",
    "circuit_unitary",
    "MAX_UNITARY_QUBITS",
]
