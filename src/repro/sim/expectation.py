"""Observable expectations and the shot-sampling experiment protocol.

The paper's experiments run 8192 shots per circuit and derive
algorithm-specific observables (magnetization) from the measured
distribution.  These helpers provide that protocol for any diagonal
(Z-basis) observable: exact expectations from a distribution, and a
finite-shot estimate that models the sampling error real experiments
carry.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationError
from repro.sim.statevector import (
    counts_to_distribution,
    ideal_distribution,
    sample_counts,
)

#: The paper's per-experiment shot budget ("maximum allowed" on IBMQ).
DEFAULT_SHOTS = 8192


def z_string_expectation(probs: np.ndarray, qubits: tuple[int, ...]) -> float:
    """Expectation of ``Z_{q1} Z_{q2} ...`` under a Z-basis distribution.

    Each basis state contributes ``(-1)^(parity of the selected bits)``.
    """
    probs = np.asarray(probs, dtype=float)
    dim = len(probs)
    num_qubits = int(np.log2(dim))
    if 2**num_qubits != dim:
        raise SimulationError(f"distribution length {dim} not a power of 2")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise SimulationError(f"qubits {qubits} out of range for {num_qubits}")
    states = np.arange(dim)
    parity = np.zeros(dim, dtype=int)
    for q in qubits:
        parity ^= (states >> q) & 1
    signs = 1.0 - 2.0 * parity
    return float(probs @ signs)


def diagonal_expectation(probs: np.ndarray, diagonal: np.ndarray) -> float:
    """Expectation of an arbitrary diagonal observable."""
    probs = np.asarray(probs, dtype=float)
    diagonal = np.asarray(diagonal, dtype=float)
    if probs.shape != diagonal.shape:
        raise SimulationError(
            f"shape mismatch: {probs.shape} vs {diagonal.shape}"
        )
    return float(probs @ diagonal)


def sampled_distribution(
    circuit: Circuit,
    shots: int = DEFAULT_SHOTS,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Finite-shot estimate of the ideal output distribution.

    Mirrors the paper's experimental protocol: evolve, sample ``shots``
    outcomes, histogram.  Statistical error scales as ``1/sqrt(shots)``.
    """
    probs = ideal_distribution(circuit)
    counts = sample_counts(probs, shots=shots, rng=rng)
    return counts_to_distribution(counts, len(probs))
