"""Mapping physical-order distributions to classical-bit order.

After routing, a logical qubit may end up on a different physical qubit;
the transpiler records this by re-targeting measure operations
(``measure q[phys] -> c[logical]``).  Simulators in this library always
return distributions over *physical* qubit order, so these helpers apply
the measure mapping to recover the logical distribution.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationError


def measurement_map(circuit: Circuit) -> dict[int, int]:
    """Extract the ``cbit -> qubit`` map from a circuit's measure ops.

    Raises :class:`SimulationError` if a classical bit is written twice.
    """
    mapping: dict[int, int] = {}
    for op in circuit.operations:
        if op.name != "measure":
            continue
        if op.cbit in mapping:
            raise SimulationError(f"classical bit {op.cbit} measured twice")
        mapping[op.cbit] = op.qubits[0]
    return mapping


def distribution_over_cbits(
    probs: np.ndarray, num_qubits: int, cbit_to_qubit: dict[int, int]
) -> np.ndarray:
    """Permute/marginalize a physical distribution into cbit order.

    ``cbit_to_qubit`` must cover cbits ``0..m-1``; unmeasured qubits are
    summed out.
    """
    m = len(cbit_to_qubit)
    if sorted(cbit_to_qubit) != list(range(m)):
        raise SimulationError(
            f"classical bits must be 0..{m - 1}, got {sorted(cbit_to_qubit)}"
        )
    qubits = list(cbit_to_qubit.values())
    if len(set(qubits)) != m:
        raise SimulationError("two classical bits read the same qubit")
    tensor = np.asarray(probs).reshape((2,) * num_qubits)
    # Output axis i corresponds to cbit m-1-i (most significant first);
    # physical qubit q lives on input axis num_qubits-1-q.
    leading = [num_qubits - 1 - cbit_to_qubit[c] for c in range(m - 1, -1, -1)]
    rest = [a for a in range(num_qubits) if a not in leading]
    tensor = np.transpose(tensor, leading + rest)
    return tensor.reshape(2**m, -1).sum(axis=1)


def logical_distribution(circuit: Circuit, physical_probs: np.ndarray) -> np.ndarray:
    """Apply the circuit's measure mapping to a physical distribution.

    Circuits without measurements are returned unchanged (physical order
    is already logical order).
    """
    mapping = measurement_map(circuit)
    if not mapping:
        return np.asarray(physical_probs)
    return distribution_over_cbits(
        physical_probs, circuit.num_qubits, mapping
    )
