"""Ideal statevector simulation.

Provides the "ground truth" path of the paper's evaluation: circuits are
evolved exactly and the output probability distribution (Born rule) is
either returned analytically or sampled shot-by-shot.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationError
from repro.linalg.embed import apply_gate_to_state
from repro.metrics.tolerances import DISTRIBUTION_NORM_TOL


def zero_state(num_qubits: int) -> np.ndarray:
    """Return the ``|0...0>`` statevector of ``num_qubits`` qubits."""
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def run_statevector(
    circuit: Circuit, initial_state: np.ndarray | None = None
) -> np.ndarray:
    """Evolve a statevector through the circuit's unitary operations.

    Measurements and barriers are ignored (the full pre-measurement state
    is returned); use :func:`probabilities` or :func:`sample_counts` to
    model the readout.
    """
    num_qubits = circuit.num_qubits
    if initial_state is None:
        state = zero_state(num_qubits)
    else:
        state = np.asarray(initial_state, dtype=complex).copy()
        if state.shape != (2**num_qubits,):
            raise SimulationError(
                f"initial state has shape {state.shape}, "
                f"expected ({2**num_qubits},)"
            )
    for op in circuit.operations:
        if op.name in ("measure", "barrier"):
            continue
        state = apply_gate_to_state(state, op.gate.matrix(), op.qubits, num_qubits)
    return state


def probabilities(state: np.ndarray) -> np.ndarray:
    """Born-rule outcome probabilities of a statevector."""
    probs = np.abs(state) ** 2
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=DISTRIBUTION_NORM_TOL):
        raise SimulationError(f"state is not normalized (sum={total})")
    return probs / total


def ideal_distribution(circuit: Circuit) -> np.ndarray:
    """Exact output distribution of ``circuit`` starting from ``|0...0>``."""
    return probabilities(run_statevector(circuit.without_measurements()))


def sample_counts(
    probs: np.ndarray,
    shots: int,
    rng: np.random.Generator | int | None = None,
) -> dict[int, int]:
    """Sample ``shots`` measurement outcomes from a distribution.

    Returns a sparse ``{basis_index: count}`` histogram, mirroring the
    8192-shot experiments in the paper.
    """
    if shots < 1:
        raise SimulationError("shots must be positive")
    rng = np.random.default_rng(rng)
    outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
    histogram = np.bincount(outcomes, minlength=len(probs))
    observed = np.flatnonzero(histogram)
    return {int(v): int(histogram[v]) for v in observed}


def counts_to_distribution(counts: dict[int, int], dim: int) -> np.ndarray:
    """Convert a counts histogram into a dense probability vector."""
    if not counts:
        raise SimulationError("empty counts histogram")
    indices = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
    values = np.fromiter(counts.values(), dtype=np.int64, count=len(counts))
    total = int(values.sum())
    if total == 0:
        raise SimulationError("empty counts histogram")
    bad = (indices < 0) | (indices >= dim)
    if bad.any():
        outlier = int(indices[bad][0])
        raise SimulationError(f"outcome {outlier} out of range for dim {dim}")
    probs = np.zeros(dim)
    probs[indices] = values / total
    return probs
