"""Full-circuit unitary computation (the "Qiskit unitary simulator" role).

Accumulates ``U = U_K ... U_1`` by contracting each gate into a running
``2^n x 2^n`` matrix — no gate is ever embedded into a dense full-width
operator on its own.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationError
from repro.linalg.embed import apply_gate_to_matrix

#: Widths beyond this are refused: the dense unitary would not fit and the
#: paper itself declares full-unitary treatment infeasible at this scale.
MAX_UNITARY_QUBITS = 14


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Compute the dense unitary of a measurement-free circuit."""
    if circuit.num_qubits > MAX_UNITARY_QUBITS:
        raise SimulationError(
            f"refusing to build a dense unitary for {circuit.num_qubits} "
            f"qubits (max {MAX_UNITARY_QUBITS}); partition the circuit instead"
        )
    if circuit.has_measurements():
        raise SimulationError(
            "circuit contains measurements; call without_measurements() first"
        )
    dim = 2**circuit.num_qubits
    unitary = np.eye(dim, dtype=complex)
    for op in circuit.operations:
        if op.name == "barrier":
            continue
        unitary = apply_gate_to_matrix(
            unitary, op.gate.matrix(), op.qubits, circuit.num_qubits
        )
    return unitary
