"""Reproduction of QUEST (ASPLOS 2022): approximate quantum-circuit
synthesis for higher output fidelity.

Public API highlights::

    from repro import Circuit, run_quest, QuestConfig
    from repro.algorithms import tfim
    from repro.core import ensemble_distribution
    from repro.metrics import tvd

    circuit = tfim(4, steps=3)
    result = run_quest(circuit, QuestConfig(seed=0))
    print(result.summary())
"""

from repro.batch import BatchResult, run_quest_batch
from repro.circuits import Circuit, Gate, Operation
from repro.core import QuestConfig, QuestResult, ensemble_distribution, run_quest
from repro.exceptions import ReproError
from repro.metrics import jsd, tvd
from repro.noise import NoiseModel, fake_manila
from repro.transpile import transpile
from repro.verify import CertificationReport, certify_equivalence

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Gate",
    "Operation",
    "run_quest",
    "run_quest_batch",
    "BatchResult",
    "QuestConfig",
    "QuestResult",
    "ensemble_distribution",
    "transpile",
    "NoiseModel",
    "fake_manila",
    "tvd",
    "jsd",
    "CertificationReport",
    "certify_equivalence",
    "ReproError",
    "__version__",
]
