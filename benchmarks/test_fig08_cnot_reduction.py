"""Fig. 8: percent CNOT reduction over the Baseline for Qiskit, QUEST,
and QUEST + Qiskit across the Table-1 algorithm suite.

Paper shape to reproduce: QUEST delivers 30-80 % reductions on most
algorithms, always beats the Qiskit-only passes, and never does worse
than the Baseline; QUEST + Qiskit is within a few points of QUEST either
way.
"""

from __future__ import annotations

import numpy as np
from conftest import print_table

from repro.transpile import transpile


def _reduction(baseline_cnots: int, cnots: int) -> float:
    return 100.0 * (1.0 - cnots / baseline_cnots)


def _collect(quest_cache):
    rows = []
    for name in quest_cache.names:
        result = quest_cache.result(name)
        baseline = result.original_cnot_count
        qiskit_cnots = transpile(
            result.baseline, optimization_level=3, rng=0
        ).cnot_count
        quest_cnots = float(np.mean(result.cnot_counts))
        quest_qiskit_cnots = float(
            np.mean(
                [
                    transpile(c, optimization_level=3, rng=0).cnot_count
                    for c in result.circuits
                ]
            )
        )
        rows.append(
            (
                name,
                baseline,
                _reduction(baseline, qiskit_cnots),
                _reduction(baseline, quest_cnots),
                _reduction(baseline, quest_qiskit_cnots),
            )
        )
    return rows


def test_fig08_cnot_reduction(benchmark, quest_cache):
    rows = benchmark.pedantic(
        lambda: _collect(quest_cache), rounds=1, iterations=1
    )
    print_table(
        "Fig. 8: % CNOT reduction vs Baseline",
        ["algorithm", "baseline_cnots", "qiskit_%", "quest_%", "quest+qiskit_%"],
        [
            [n, b, f"{q:.1f}", f"{u:.1f}", f"{uq:.1f}"]
            for n, b, q, u, uq in rows
        ],
    )
    quest_reductions = [u for _, _, _, u, _ in rows]
    for name, _, qiskit, quest, _ in rows:
        # QUEST never performs worse than the Baseline...
        assert quest >= -1e-9, name
        # ...and at least matches the Qiskit passes (it can fall back to
        # running them on its own output).
        assert quest >= qiskit - 5.0, name
    # Headline claim at this scale: the compressible (materials-
    # simulation and variational) half of the suite lands in the paper's
    # 30-80%+ band; the tiny arithmetic circuits are honestly
    # incompressible under the distance cap and fall back to the
    # Baseline (0%), see EXPERIMENTS.md.
    assert sum(1 for r in quest_reductions if r >= 30.0) >= 4
    assert max(quest_reductions) >= 80.0
