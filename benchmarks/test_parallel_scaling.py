"""Smoke benchmark: serial vs. parallel vs. cached block synthesis.

Runs the same 5-qubit Trotterized TFIM circuit through QUEST three ways —
serial cold (cache disabled), 2-worker cold, and a cached re-run against
a warm on-disk store — and records the timings to ``BENCH_parallel.json``
at the repo root.  Asserts the subsystem's two core claims:

* all three modes produce identical selections (determinism), and
* the cached re-run reports cache hits and spends less time in synthesis
  than the cold run.

Absolute speedup from 2 workers is load-dependent (blocks are small at
bench scale, so pool startup is a visible fraction), which is why the
parallel run is recorded but only sanity-checked, not asserted faster.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import print_table

from repro import QuestConfig, run_quest
from repro.algorithms import tfim

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

#: Deliberately heavier than the unit-test configs so synthesis dominates
#: and the cache/parallel effects are visible, but still minutes-free.
SCALING_CONFIG = dict(
    seed=2022,
    max_samples=4,
    max_block_qubits=2,
    threshold_per_block=0.25,
    max_layers_per_block=3,
    solutions_per_layer=3,
    instantiation_starts=2,
    max_optimizer_iterations=120,
    annealing_maxiter=80,
    block_time_budget=20.0,
    sphere_variants_per_count=2,
)


def _timed_run(circuit, **overrides):
    config = QuestConfig(**{**SCALING_CONFIG, **overrides})
    start = time.perf_counter()
    result = run_quest(circuit, config)
    return result, time.perf_counter() - start


def test_parallel_scaling_smoke(tmp_path):
    circuit = tfim(5, steps=2)

    serial, serial_wall = _timed_run(circuit, workers=1, cache=False)
    parallel, parallel_wall = _timed_run(circuit, workers=2, cache=False)
    cache_dir = str(tmp_path / "pool_cache")
    cold, cold_wall = _timed_run(circuit, workers=1, cache_dir=cache_dir)
    cached, cached_wall = _timed_run(circuit, workers=1, cache_dir=cache_dir)

    rows = [
        ["serial (no cache)", f"{serial_wall:.2f}",
         f"{serial.timings.synthesis_seconds:.2f}", serial.cache_hits],
        ["2 workers (no cache)", f"{parallel_wall:.2f}",
         f"{parallel.timings.synthesis_seconds:.2f}", parallel.cache_hits],
        ["cold (disk cache)", f"{cold_wall:.2f}",
         f"{cold.timings.synthesis_seconds:.2f}", cold.cache_hits],
        ["cached re-run", f"{cached_wall:.2f}",
         f"{cached.timings.synthesis_seconds:.2f}", cached.cache_hits],
    ]
    print_table(
        "Parallel/caching scaling (TFIM-5, 2 Trotter steps)",
        ["mode", "wall s", "synthesis s", "cache hits"],
        rows,
    )

    # Determinism across all modes.
    signature = [
        serial.cnot_counts, serial.selection.bounds,
        [tuple(int(i) for i in c) for c in serial.selection.choices],
    ]
    for other in (parallel, cold, cached):
        assert [
            other.cnot_counts, other.selection.bounds,
            [tuple(int(i) for i in c) for c in other.selection.choices],
        ] == signature

    # The cached re-run must actually hit and actually save time.
    assert cached.cache_hits > 0
    assert cached.cache_misses == 0
    assert (
        cached.timings.synthesis_seconds < cold.timings.synthesis_seconds
    )
    # Within-run dedup alone (Trotter repeats) already beats no-cache.
    assert cold.cache_hits > 0

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "circuit": "tfim(5, steps=2)",
                "blocks": len(serial.blocks),
                "serial_seconds": serial_wall,
                "parallel2_seconds": parallel_wall,
                "cold_cache_seconds": cold_wall,
                "cached_rerun_seconds": cached_wall,
                "serial_synthesis_seconds":
                    serial.timings.synthesis_seconds,
                "parallel2_synthesis_seconds":
                    parallel.timings.synthesis_seconds,
                "cold_synthesis_seconds": cold.timings.synthesis_seconds,
                "cached_synthesis_seconds":
                    cached.timings.synthesis_seconds,
                "cold_cache_hits": cold.cache_hits,
                "cached_cache_hits": cached.cache_hits,
                "original_cnot_count": serial.original_cnot_count,
                "selected_cnot_counts": serial.cnot_counts,
                # Distinct CNOT counts synthesized per block pool — the
                # LEAP levels actually available to the selector.
                "pool_cnot_levels": [
                    sorted({int(c) for c in pool.cnot_counts()})
                    for pool in serial.pools
                ],
            },
            indent=2,
        )
        + "\n"
    )
