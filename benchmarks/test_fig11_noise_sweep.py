"""Fig. 11: percent reduction in TVD vs the noisy Baseline at Pauli noise
levels 1 %, 0.5 %, and 0.1 % — Qiskit vs QUEST + Qiskit.

Paper shape: QUEST + Qiskit reduces the TVD at every noise level,
including the 10x-lower projected future level, i.e. approximation keeps
paying off as hardware improves.
"""

from __future__ import annotations

import numpy as np
from conftest import print_table

from repro.metrics import average_distributions, tvd
from repro.noise import NoiseModel, run_density
from repro.sim import ideal_distribution
from repro.transpile import transpile

LEVELS = [0.01, 0.005, 0.001]
#: CNOT-heavy algorithms with structured (non-uniform) outputs; QFT is
#: excluded because its |0..0>-input output is the uniform distribution,
#: which Pauli noise leaves fixed (baseline TVD ~ 0, so "% reduction"
#: is undefined for it).
ALGOS = ["tfim_4", "heisenberg_4", "xy_4", "adder_4"]


def _noisy(circuit, level):
    return run_density(circuit, NoiseModel.from_noise_level(level))


def _collect(quest_cache):
    rows = []
    for name in ALGOS:
        result = quest_cache.result(name)
        truth = ideal_distribution(result.baseline)
        qiskit_circuit = transpile(
            result.baseline, optimization_level=3, rng=0
        ).circuit
        quest_circuits = [
            transpile(c, optimization_level=3, rng=0).circuit
            for c in result.circuits
        ]
        for level in LEVELS:
            baseline_tvd = tvd(truth, _noisy(result.baseline, level))
            qiskit_tvd = tvd(truth, _noisy(qiskit_circuit, level))
            quest_tvd = tvd(
                truth,
                average_distributions(
                    [_noisy(c, level) for c in quest_circuits]
                ),
            )
            def reduction(x):
                return 100.0 * (baseline_tvd - x) / baseline_tvd
            rows.append(
                (name, level, baseline_tvd, reduction(qiskit_tvd),
                 reduction(quest_tvd))
            )
    return rows


def test_fig11_noise_sweep(benchmark, quest_cache):
    rows = benchmark.pedantic(
        lambda: _collect(quest_cache), rounds=1, iterations=1
    )
    print_table(
        "Fig. 11: % TVD reduction vs noisy Baseline",
        ["algorithm", "noise", "baseline_tvd", "qiskit_%", "quest+qiskit_%"],
        [
            [n, f"{lv:.3f}", f"{b:.4f}", f"{q:.1f}", f"{u:.1f}"]
            for n, lv, b, q, u in rows
        ],
    )
    # QUEST + Qiskit reduces TVD wherever noise still dominates the
    # approximation error, i.e. at the 1% and 0.5% levels.  (At 0.1% on
    # these laptop-scale circuits, baseline noise error can drop below
    # the fixed approximation error — a scale artifact recorded in
    # EXPERIMENTS.md; the paper's 100+-CNOT circuits stay noise-dominated
    # even at 0.1%.)
    for name, level, _, _, quest_reduction in rows:
        if level >= 0.005:
            assert quest_reduction > -5.0, (name, level)
    # And it beats Qiskit alone on average.
    mean_quest = float(np.mean([u for *_, u in rows]))
    mean_qiskit = float(np.mean([q for *_, q, _ in rows]))
    assert mean_quest > mean_qiskit
