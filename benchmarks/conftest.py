"""Shared infrastructure for the figure-reproduction benchmarks.

Each ``test_figNN_*.py`` regenerates the data behind one paper figure and
prints the same rows/series the paper reports.  QUEST runs are expensive,
so results are cached per-session in the ``quest_cache`` fixture and
shared across figures (Fig. 8, 9, 10, 12 all reuse the same pipelines).

Scale note: the paper evaluates 4-32 qubit circuits on a cluster plus the
IBMQ cloud; these benches default to the 3-5 qubit versions of every
algorithm so the whole suite runs on one laptop-class machine in minutes.
Every generator is parameterized, so larger scales are a constant change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import QuestConfig, run_quest
from repro.algorithms import (
    adder,
    heisenberg,
    multiplier,
    qft,
    random_hlf,
    random_qaoa,
    tfim,
    vqe_ansatz,
    xy_model,
)
from repro.metrics import average_distributions
from repro.noise import fake_manila, run_density
from repro.sim.readout import logical_distribution
from repro.transpile import transpile

#: QUEST configuration used by every figure bench.
BENCH_CONFIG = QuestConfig(
    seed=2022,
    max_samples=8,
    max_block_qubits=3,
    threshold_per_block=0.2,
    max_layers_per_block=5,
    solutions_per_layer=3,
    instantiation_starts=2,
    max_optimizer_iterations=150,
    block_time_budget=20.0,
)

#: The Table-1 suite at bench scale.  Labels carry the qubit count, like
#: the paper's "Algorithm N" axis labels in Fig. 8.
def bench_suite() -> dict:
    rng = np.random.default_rng(2022)
    return {
        "adder_4": adder(1),
        "heisenberg_4": heisenberg(4, steps=2),
        "hlf_4": random_hlf(4, rng=rng),
        "qft_4": qft(4),
        "qaoa_4": random_qaoa(4, rounds=1, rng=rng),
        "multiplier_6": multiplier(1),
        "tfim_4": tfim(4, steps=2),
        "vqe_4": vqe_ansatz(4, layers=2, rng=rng),
        "xy_4": xy_model(4, steps=2),
    }


class QuestCache:
    """Lazily computed, session-shared QUEST results per algorithm."""

    def __init__(self) -> None:
        self._suite = bench_suite()
        self._results: dict = {}

    @property
    def names(self) -> list[str]:
        return list(self._suite)

    def circuit(self, name: str):
        return self._suite[name]

    def result(self, name: str):
        if name not in self._results:
            self._results[name] = run_quest(self._suite[name], BENCH_CONFIG)
        return self._results[name]


@pytest.fixture(scope="session")
def quest_cache() -> QuestCache:
    return QuestCache()


def run_on_manila(circuit, optimization_level: int = 2, rng: int = 0):
    """Transpile to the fake Manila device and return the noisy logical
    output distribution (the Fig. 10/13 execution path)."""
    manila = fake_manila()
    prepared = circuit.copy()
    if not prepared.has_measurements():
        prepared.measure_all()
    compiled = transpile(
        prepared, backend=manila, optimization_level=optimization_level, rng=rng
    )
    physical = run_density(compiled.circuit, manila.noise)
    logical = logical_distribution(compiled.circuit, physical)
    return logical[: 2**circuit.num_qubits]


def quest_manila_distribution(result, optimization_level: int = 2):
    """QUEST + Qiskit on Manila: ensemble average of noisy outputs."""
    return average_distributions(
        [run_on_manila(c, optimization_level) for c in result.circuits]
    )


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print a figure's data as an aligned text table."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
