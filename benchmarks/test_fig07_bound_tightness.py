"""Fig. 7: the Sec. 3.8 upper bound vs the actual full-circuit process
distance, across algorithms and perturbation scales.

The paper shows the bound is respected for every sample and reasonably
tight.  Here each algorithm circuit is partitioned, its blocks perturbed
at several magnitudes, and both sides of the inequality are printed.
"""

from __future__ import annotations

import numpy as np
from conftest import print_table

from repro.algorithms import qft, tfim, vqe_ansatz, xy_model
from repro.circuits import Circuit
from repro.core import verify_bound
from repro.partition import scan_partition

SCALES = [0.02, 0.05, 0.1, 0.2, 0.4]


def _perturb(circuit: Circuit, rng: np.random.Generator, scale: float) -> Circuit:
    out = Circuit(circuit.num_qubits)
    for op in circuit.operations:
        if op.params:
            out.add_gate(
                op.name,
                op.qubits,
                tuple(p + float(rng.normal(0.0, scale)) for p in op.params),
            )
        else:
            out.append(op)
    return out


def _bound_samples():
    circuits = {
        "tfim_4": tfim(4, steps=2),
        "xy_4": xy_model(4, steps=2),
        "qft_4": qft(4),
        "vqe_4": vqe_ansatz(4, layers=2, rng=5),
    }
    rng = np.random.default_rng(7)
    rows = []
    for name, circuit in circuits.items():
        blocks = scan_partition(
            circuit.without_measurements(), max_block_qubits=3
        )
        for scale in SCALES:
            approx = [
                b.with_circuit(_perturb(b.circuit, rng, scale)) for b in blocks
            ]
            check = verify_bound(circuit, blocks, approx)
            rows.append(
                (name, scale, check.actual_distance, check.upper_bound)
            )
    return rows


def test_fig07_bound_respected(benchmark):
    rows = benchmark.pedantic(_bound_samples, rounds=1, iterations=1)
    print_table(
        "Fig. 7: process-distance upper bound vs actual distance",
        ["algorithm", "perturbation", "actual", "bound"],
        [
            [name, scale, f"{actual:.4f}", f"{bound:.4f}"]
            for name, scale, actual, bound in rows
        ],
    )
    for name, scale, actual, bound in rows:
        assert actual <= bound + 1e-7, (name, scale)
    # Tightness: for most samples the bound is within ~4x of the actual
    # distance (the paper calls it "relatively tight").
    ratios = [actual / bound for _, _, actual, bound in rows if bound > 1e-6]
    assert np.median(ratios) > 0.25
