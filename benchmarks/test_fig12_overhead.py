"""Fig. 12: QUEST's one-time compilation overhead and its breakdown into
partitioning, synthesis, and dual annealing.

Paper shape differs in one deliberate way (documented in DESIGN.md):
the authors' wall-clock is dominated by partitioning on giant TFIM-32
circuits and cluster-parallel synthesis; at this bench's laptop scale,
numerical synthesis dominates instead.  The bench therefore asserts the
structural facts that transfer: every stage is measured, synthesis is
the dominant serial cost, and annealing is a minor contributor.
"""

from __future__ import annotations

from conftest import print_table


def _collect(quest_cache):
    rows = []
    for name in quest_cache.names:
        result = quest_cache.result(name)
        timings = result.timings
        rows.append(
            (
                name,
                timings.total_seconds,
                timings.partition_seconds,
                timings.synthesis_seconds,
                timings.annealing_seconds,
            )
        )
    return rows


def test_fig12_overhead_breakdown(benchmark, quest_cache):
    # Warm the cache outside the timed region, then benchmark the
    # reporting pass itself.
    for name in quest_cache.names:
        quest_cache.result(name)
    rows = benchmark.pedantic(
        lambda: _collect(quest_cache), rounds=1, iterations=1
    )
    print_table(
        "Fig. 12: QUEST overhead (seconds)",
        ["algorithm", "total_s", "partition_s", "synthesis_s", "annealing_s"],
        [
            [n, f"{t:.2f}", f"{p:.3f}", f"{s:.2f}", f"{a:.3f}"]
            for n, t, p, s, a in rows
        ],
    )
    for name, total, partition, synthesis, annealing in rows:
        assert total > 0.0, name
        # Synthesis dominates the serial cost at this scale.
        assert synthesis >= 0.5 * total, name
        # Annealing is a minor contributor (paper: "not major contributors").
        assert annealing <= 0.5 * total, name
