"""Fig. 16: output quality vs the process-distance threshold of the dual
annealing engine.

Paper shape: a too-high threshold admits coarse approximations and the
output distance blows up; a sensible band of thresholds all work well
(no exhaustive tuning needed).  The sweep reuses one synthesis run per
algorithm and re-runs only the selection stage per threshold — the same
factorization the paper's pipeline has.
"""

from __future__ import annotations

import numpy as np
from conftest import BENCH_CONFIG, print_table

from repro import run_quest
from repro.algorithms import heisenberg, tfim
from repro.core import SelectionObjective, ensemble_distribution, select_approximations
from repro.metrics import tvd
from repro.partition import stitch_blocks
from repro.sim import ideal_distribution

#: Threshold per block; the full-circuit threshold scales with the block
#: count, as in Sec. 4.1.
THRESHOLDS = [0.05, 0.1, 0.2, 0.4, 0.8]


def _sweep(builder):
    from dataclasses import replace

    circuit = builder(4, steps=2)
    # Synthesize once with a *permissive* per-block cap so the pools also
    # contain the coarse approximations that a too-high selection
    # threshold would admit — the effect Fig. 16 demonstrates.  Only the
    # selection stage is re-run per threshold.
    base = run_quest(
        circuit, replace(BENCH_CONFIG, threshold_per_block=0.8)
    )
    truth = ideal_distribution(base.baseline)
    rows = []
    for per_block in THRESHOLDS:
        objective = SelectionObjective(
            pools=base.pools,
            threshold=per_block * len(base.blocks),
            original_cnot_count=base.original_cnot_count,
        )
        selection = select_approximations(
            objective, max_samples=BENCH_CONFIG.max_samples, seed=1
        )
        circuits = [
            stitch_blocks(
                [
                    pool.block.with_circuit(
                        pool.candidates[int(i)].circuit
                    )
                    for pool, i in zip(base.pools, choice)
                ],
                base.baseline.num_qubits,
            )
            for choice in selection.choices
        ]
        ensemble = ensemble_distribution(circuits)
        mean_cnots = float(np.mean([c.cnot_count() for c in circuits]))
        rows.append((per_block, mean_cnots, tvd(truth, ensemble)))
    return base.original_cnot_count, rows


def _check_shape(rows):
    tvds = [t for _, _, t in rows]
    cnots = [c for _, c, _ in rows]
    # Higher thresholds admit coarser (cheaper) approximations...
    assert cnots[-1] <= cnots[0] + 1e-9
    # ...and the coarsest threshold produces the worst output distance,
    # while a mid-band threshold stays accurate.
    assert tvds[-1] >= max(tvds[0], tvds[1]) - 1e-9
    assert min(tvds[:3]) < 0.1


def test_fig16_tfim_threshold_sweep(benchmark):
    baseline_cnots, rows = benchmark.pedantic(
        lambda: _sweep(tfim), rounds=1, iterations=1
    )
    print_table(
        f"Fig. 16(a): TFIM-4 ({baseline_cnots} CNOTs) threshold sweep",
        ["threshold_per_block", "mean_cnots", "ensemble_tvd"],
        [[f"{p:.2f}", f"{c:.1f}", f"{t:.4f}"] for p, c, t in rows],
    )
    _check_shape(rows)


def test_fig16_heisenberg_threshold_sweep(benchmark):
    baseline_cnots, rows = benchmark.pedantic(
        lambda: _sweep(heisenberg), rounds=1, iterations=1
    )
    print_table(
        f"Fig. 16(b): Heisenberg-4 ({baseline_cnots} CNOTs) threshold sweep",
        ["threshold_per_block", "mean_cnots", "ensemble_tvd"],
        [[f"{p:.2f}", f"{c:.1f}", f"{t:.4f}"] for p, c, t in rows],
    )
    _check_shape(rows)
