"""Fig. 9: output distance (TVD and JSD) of QUEST ensembles vs the ground
truth in an *ideal* (noiseless) environment.

Paper shape: both metrics stay low across all algorithms despite the
large CNOT reductions of Fig. 8.  Includes the ablation the paper argues
in Sec. 3.6: dissimilar selection beats (a) picking only the single
lowest-CNOT approximation and (b) random sampling of the approximation
space (the paper quotes > 0.1 TVD for random sampling).
"""

from __future__ import annotations

import numpy as np
from conftest import print_table

from repro.core import ensemble_distribution
from repro.metrics import average_distributions, jsd, tvd
from repro.partition import stitch_blocks
from repro.sim import ideal_distribution


def _random_ensemble_tvd(result, truth, rng) -> float:
    """Random sampling baseline: average M uniform-random pool choices."""
    distributions = []
    for _ in range(max(len(result.circuits), 4)):
        chosen_blocks = [
            pool.block.with_circuit(
                pool.candidates[int(rng.integers(pool.size))].circuit
            )
            for pool in result.pools
        ]
        circuit = stitch_blocks(chosen_blocks, result.baseline.num_qubits)
        distributions.append(ideal_distribution(circuit))
    return tvd(truth, average_distributions(distributions))


def _collect(quest_cache):
    rng = np.random.default_rng(99)
    rows = []
    for name in quest_cache.names:
        result = quest_cache.result(name)
        truth = ideal_distribution(result.baseline)
        ensemble = ensemble_distribution(result.circuits)
        lowest_cnot = min(result.circuits, key=lambda c: c.cnot_count())
        rows.append(
            (
                name,
                tvd(truth, ensemble),
                jsd(truth, ensemble),
                tvd(truth, ideal_distribution(lowest_cnot)),
                _random_ensemble_tvd(result, truth, rng),
            )
        )
    return rows


def test_fig09_ideal_output_distance(benchmark, quest_cache):
    rows = benchmark.pedantic(
        lambda: _collect(quest_cache), rounds=1, iterations=1
    )
    print_table(
        "Fig. 9: ideal-environment output distance of QUEST ensembles",
        ["algorithm", "tvd", "jsd", "tvd_lowest_cnot_only", "tvd_random_selection"],
        [
            [n, f"{t:.4f}", f"{j:.4f}", f"{tl:.4f}", f"{tr:.4f}"]
            for n, t, j, tl, tr in rows
        ],
    )
    tvds = [t for _, t, _, _, _ in rows]
    jsds = [j for _, _, j, _, _ in rows]
    # Low output distance across all algorithms (paper: both metrics low).
    assert max(tvds) < 0.20
    assert float(np.median(tvds)) < 0.10
    # JSD tracks TVD (paper: "both metrics have similar trends").
    assert np.corrcoef(tvds, jsds)[0, 1] > 0.7 or max(tvds) < 0.02
    # Ablation: the ensemble is no worse on average than random selection.
    mean_ensemble = float(np.mean(tvds))
    mean_random = float(np.mean([tr for *_, tr in rows]))
    assert mean_ensemble <= mean_random + 0.02
