"""Smoke benchmark: what resilience costs — and what resume saves.

Runs the same 5-qubit Trotterized TFIM circuit through QUEST four ways —
baseline (no checkpointing, validation on), validation off,
checkpointed cold, and a resume against the warm journal — and records
the timings to ``BENCH_resilience.json`` at the repo root.  Asserts the
layer's two core claims:

* all four modes produce identical selections (checkpointing and
  validation are observers, not participants), and
* the resumed run skips synthesis entirely (every nontrivial block
  restored from the journal) and spends less time in synthesis than the
  cold run.

Journaling overhead itself (pickle + fsync per block) is recorded but
only sanity-checked, not asserted small: at bench scale blocks take
fractions of a second, so fsync latency is a visible fraction in a way
it never is on real multi-minute blocks.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import print_table

from repro import QuestConfig, run_quest
from repro.algorithms import tfim

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

#: Mirrors BENCH_parallel's scale: heavy enough that synthesis dominates.
SCALING_CONFIG = dict(
    seed=2022,
    max_samples=4,
    max_block_qubits=2,
    threshold_per_block=0.25,
    max_layers_per_block=3,
    solutions_per_layer=3,
    instantiation_starts=2,
    max_optimizer_iterations=120,
    annealing_maxiter=80,
    block_time_budget=20.0,
    sphere_variants_per_count=2,
    cache=False,  # isolate journal/validation effects from the cache
)


def _timed_run(circuit, checkpoint_dir=None, **overrides):
    config = QuestConfig(**{**SCALING_CONFIG, **overrides})
    start = time.perf_counter()
    result = run_quest(circuit, config, checkpoint_dir=checkpoint_dir)
    return result, time.perf_counter() - start


def test_resilience_overhead_smoke(tmp_path):
    circuit = tfim(5, steps=2)

    baseline, baseline_wall = _timed_run(circuit)
    unvalidated, unvalidated_wall = _timed_run(
        circuit, validate_candidates=False
    )
    ckpt = str(tmp_path / "journal")
    cold, cold_wall = _timed_run(circuit, checkpoint_dir=ckpt)
    resumed, resumed_wall = _timed_run(circuit, checkpoint_dir=ckpt)

    rows = [
        ["baseline", f"{baseline_wall:.2f}",
         f"{baseline.timings.synthesis_seconds:.2f}", 0],
        ["validation off", f"{unvalidated_wall:.2f}",
         f"{unvalidated.timings.synthesis_seconds:.2f}", 0],
        ["checkpointed cold", f"{cold_wall:.2f}",
         f"{cold.timings.synthesis_seconds:.2f}", cold.checkpoint_hits],
        ["resumed", f"{resumed_wall:.2f}",
         f"{resumed.timings.synthesis_seconds:.2f}", resumed.checkpoint_hits],
    ]
    print_table(
        "Resilience overhead (TFIM-5, 2 Trotter steps)",
        ["mode", "wall s", "synthesis s", "checkpoint hits"],
        rows,
    )

    # Checkpointing and validation never change results.
    signature = [
        baseline.cnot_counts, baseline.selection.bounds,
        [tuple(int(i) for i in c) for c in baseline.selection.choices],
    ]
    for other in (unvalidated, cold, resumed):
        assert [
            other.cnot_counts, other.selection.bounds,
            [tuple(int(i) for i in c) for c in other.selection.choices],
        ] == signature

    # The resume restored every nontrivial block and skipped synthesis.
    assert resumed.checkpoint_hits > 0
    assert resumed.cache_misses == 0
    assert resumed.checkpoint_corrupt_entries == 0
    assert resumed.timings.synthesis_seconds < cold.timings.synthesis_seconds
    # No failures anywhere in a clean run.
    for result in (baseline, unvalidated, cold, resumed):
        assert not result.failure_log
        assert not result.synthesis_fallbacks

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "circuit": "tfim(5, steps=2)",
                "blocks": len(baseline.blocks),
                "baseline_seconds": baseline_wall,
                "no_validation_seconds": unvalidated_wall,
                "checkpointed_cold_seconds": cold_wall,
                "resumed_seconds": resumed_wall,
                "baseline_synthesis_seconds":
                    baseline.timings.synthesis_seconds,
                "checkpointed_synthesis_seconds":
                    cold.timings.synthesis_seconds,
                "resumed_synthesis_seconds":
                    resumed.timings.synthesis_seconds,
                "resumed_checkpoint_hits": resumed.checkpoint_hits,
                "original_cnot_count": baseline.original_cnot_count,
                "selected_cnot_counts": baseline.cnot_counts,
            },
            indent=1,
        )
    )
