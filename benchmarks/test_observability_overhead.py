"""Smoke benchmark: what observability costs when off — and when on.

Runs the same 5-qubit Trotterized TFIM circuit through QUEST three
ways — tracing disabled (the default no-op tracer), tracing to an
in-memory sink, and tracing to a JSON-lines file — and records the
timings to ``BENCH_observability.json`` at the repo root.  Asserts the
layer's two core claims:

* the disabled path is effectively free: wall-clock overhead versus the
  median of repeated baseline runs stays under 2%, and
* tracing never changes results — all modes produce bit-identical
  selections.

The enabled-path cost is recorded but not asserted: it depends on how
chatty the run is (events scale with layers and retries), and the
contract is only that *disabled* observability costs nothing.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from conftest import print_table

from repro import QuestConfig, run_quest
from repro.algorithms import tfim
from repro.observability import JsonlSink, ListSink, Tracer

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_observability.json"
)

#: Mirrors BENCH_resilience's scale: heavy enough that synthesis
#: dominates and the per-event bookkeeping is measured against real work.
SCALING_CONFIG = dict(
    seed=2022,
    max_samples=4,
    max_block_qubits=2,
    threshold_per_block=0.25,
    max_layers_per_block=3,
    solutions_per_layer=3,
    instantiation_starts=2,
    max_optimizer_iterations=120,
    annealing_maxiter=80,
    block_time_budget=20.0,
    sphere_variants_per_count=2,
    cache=False,  # every run does full synthesis work
)

#: Disabled-path overhead budget (fractional). The no-op tracer is a
#: single ``is_enabled`` check per call site, so 2% is generous.
MAX_DISABLED_OVERHEAD = 0.02


def _timed_run(circuit, tracer=None):
    config = QuestConfig(**SCALING_CONFIG)
    start = time.perf_counter()
    result = run_quest(circuit, config, tracer=tracer)
    return result, time.perf_counter() - start


def _signature(result):
    return [
        result.cnot_counts,
        result.selection.bounds,
        [tuple(int(i) for i in c) for c in result.selection.choices],
    ]


def test_observability_overhead_smoke(tmp_path):
    circuit = tfim(5, steps=2)

    # Warm-up absorbs one-time costs (imports, numpy dispatch caches) so
    # they don't land on whichever mode happens to run first.
    _timed_run(circuit)

    baseline_walls = []
    baseline = None
    for _ in range(3):
        baseline, wall = _timed_run(circuit)
        baseline_walls.append(wall)
    baseline_wall = statistics.median(baseline_walls)

    disabled, disabled_wall = _timed_run(circuit)
    list_sink = ListSink()
    listed, listed_wall = _timed_run(circuit, tracer=Tracer(list_sink))
    trace_path = tmp_path / "bench.trace"
    file_tracer = Tracer(JsonlSink(trace_path))
    filed, filed_wall = _timed_run(circuit, tracer=file_tracer)
    file_tracer.close()
    trace_records = len(trace_path.read_text().strip().splitlines())

    disabled_overhead = disabled_wall / baseline_wall - 1.0
    rows = [
        ["baseline (median of 3)", f"{baseline_wall:.2f}", "-", "-"],
        ["tracing disabled", f"{disabled_wall:.2f}",
         f"{disabled_overhead * 100:+.2f}%", "-"],
        ["tracing to memory", f"{listed_wall:.2f}",
         f"{(listed_wall / baseline_wall - 1.0) * 100:+.2f}%",
         len(list_sink.records)],
        ["tracing to file", f"{filed_wall:.2f}",
         f"{(filed_wall / baseline_wall - 1.0) * 100:+.2f}%",
         trace_records],
    ]
    print_table(
        "Observability overhead (TFIM-5, 2 Trotter steps)",
        ["mode", "wall s", "vs baseline", "records"],
        rows,
    )

    # Tracing is an observer, never a participant.
    signature = _signature(baseline)
    for other in (disabled, listed, filed):
        assert _signature(other) == signature

    # Disabled observability is effectively free.
    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-tracer overhead {disabled_overhead:.1%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%}"
    )

    # The traced runs actually produced a trace.
    assert len(list_sink.records) > 0
    assert trace_records == len(list_sink.records)

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "circuit": "tfim(5, steps=2)",
                "blocks": len(baseline.blocks),
                "baseline_seconds": baseline_wall,
                "baseline_runs_seconds": baseline_walls,
                "disabled_seconds": disabled_wall,
                "disabled_overhead_fraction": disabled_overhead,
                "list_sink_seconds": listed_wall,
                "jsonl_sink_seconds": filed_wall,
                "trace_records": trace_records,
                "metrics_counters": filed.metrics["counters"],
                "original_cnot_count": baseline.original_cnot_count,
                "selected_cnot_counts": baseline.cnot_counts,
            },
            indent=1,
        )
    )
