"""Fig. 4: exactly synthesized solutions of a VQE circuit — CNOT count
does not order output distance (TVD).

Runs the LEAP compiler on a 4-qubit VQE circuit, keeps the near-exact
solutions it finds at different CNOT counts, and prints (cnots, distance,
TVD).  The paper's observation: the minimum-CNOT exact solution is not
the minimum-TVD one, which motivates approximate + ensemble selection.
"""

from __future__ import annotations

from conftest import print_table

from repro.algorithms import vqe_ansatz
from repro.metrics import tvd
from repro.sim import circuit_unitary, ideal_distribution
from repro.synthesis import LeapConfig, synthesize

#: "Exact" threshold from the paper (process distance < 1e-5); our float64
#: optimizer reliably reaches ~1e-6, comfortably below it.
EXACT_THRESHOLD = 1e-5


def _collect_solutions():
    circuit = vqe_ansatz(4, layers=1, rng=11)
    target = circuit_unitary(circuit)
    config = LeapConfig(
        max_layers=5,
        seed=4,
        solutions_per_layer=3,
        instantiation_starts=3,
        max_optimizer_iterations=400,
        time_budget=240.0,
    )
    report = synthesize(target, config)
    truth = ideal_distribution(circuit)
    rows = []
    for solution in report.solutions:
        output = ideal_distribution(solution.circuit)
        rows.append(
            (solution.cnot_count, solution.distance, tvd(truth, output))
        )
    return circuit, rows


def test_fig04_exact_scatter(benchmark):
    circuit, rows = benchmark.pedantic(_collect_solutions, rounds=1, iterations=1)
    exact = [r for r in rows if r[1] < EXACT_THRESHOLD]
    print_table(
        f"Fig. 4: VQE-4 ({circuit.cnot_count()} CNOTs) synthesized solutions",
        ["cnots", "process_distance", "tvd"],
        [[c, f"{d:.2e}", f"{t:.4f}"] for c, d, t in rows],
    )
    print(f"exact (<{EXACT_THRESHOLD:g}) solutions: {len(exact)}")
    # At least one exact solution exists and exact solutions have tiny TVD.
    assert exact, "no exact solution found"
    assert min(t for _, _, t in exact) < 0.01
    # The approximate (non-exact) pool spans a wide TVD range, the spread
    # Fig. 4 illustrates.
    tvds = [t for _, _, t in rows]
    assert max(tvds) - min(tvds) > 0.05
