"""Smoke benchmark: PTM superoperator engine vs. trajectory sampling.

Times noisy evaluation of a TFIM-5 ensemble — the shape of QUEST's
Sec. 5 loop, where every selected approximation is evaluated under the
same noise model — through the batched trajectory engine (T=1000 per
circuit) and through one batched PTM contraction, and records the
numbers to ``BENCH_ptm.json`` at the repo root.  Asserts the engine's
three claims in the same run:

* >= 10x ensemble throughput over the batched trajectory engine on the
  numpy backend (the PTM answer is also *exact*, where T=1000
  trajectories still carries ~1e-2 sampling error);
* pointwise agreement with the density-matrix reference within
  ``PTM_DENSITY_AGREEMENT_ATOL`` for every ensemble member;
* bit-identical pipeline selections whichever engine the run is
  configured with (the engine only touches post-selection evaluation).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import print_table

from repro import QuestConfig, run_quest
from repro.algorithms import tfim
from repro.metrics.tolerances import PTM_DENSITY_AGREEMENT_ATOL
from repro.noise import (
    NoiseModel,
    run_density,
    run_ptm_ensemble,
    run_trajectories,
)
from repro.noise.ptm import PtmCache

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_ptm.json"

TRAJECTORIES = 1000
ENSEMBLE_SIZE = 16
SPEEDUP_FLOOR = 10.0

#: Fast pipeline config for the selection-identity check (mirrors the
#: selection regression suite).
_FAST = QuestConfig(
    seed=7,
    max_samples=4,
    max_block_qubits=2,
    max_layers_per_block=3,
    solutions_per_layer=2,
    instantiation_starts=2,
    max_optimizer_iterations=120,
    block_time_budget=10.0,
    threshold_per_block=0.3,
)


def _ensemble() -> list:
    """TFIM-5 variants sharing one gate skeleton, like a QUEST ensemble."""
    circuits = []
    for index in range(ENSEMBLE_SIZE):
        circuit = tfim(5, steps=2)
        circuit.rz(0.1 + 0.05 * index, index % 5)
        circuits.append(circuit)
    return circuits


def _choices(result) -> tuple:
    return tuple(
        tuple(int(i) for i in choice) for choice in result.selection.choices
    )


def test_ptm_ensemble_throughput():
    circuits = _ensemble()
    noise = NoiseModel.from_noise_level(0.01)

    # --- Trajectory engine: one batched T=1000 run per circuit ---------
    start = time.perf_counter()
    sampled = [
        run_trajectories(
            circuit, noise, trajectories=TRAJECTORIES, rng=7, batched=True
        )
        for circuit in circuits
    ]
    trajectory_seconds = time.perf_counter() - start

    # --- PTM engine: the whole ensemble as one batched contraction -----
    cache = PtmCache()
    start = time.perf_counter()
    exact = run_ptm_ensemble(circuits, noise, backend="numpy", cache=cache)
    ptm_cold_seconds = time.perf_counter() - start
    compile_misses = cache.misses
    # Steady state (the Sec. 5 loop evaluates many ensembles under one
    # warm compile cache): best of three warm passes.
    ptm_seconds = ptm_cold_seconds
    for _ in range(3):
        start = time.perf_counter()
        run_ptm_ensemble(circuits, noise, backend="numpy", cache=cache)
        ptm_seconds = min(ptm_seconds, time.perf_counter() - start)
    speedup = trajectory_seconds / ptm_seconds

    # --- Exactness: agree with the density reference, member by member -
    density_gap = max(
        float(np.max(np.abs(run_density(circuit, noise) - row)))
        for circuit, row in zip(circuits, exact)
    )
    assert density_gap <= PTM_DENSITY_AGREEMENT_ATOL
    sampling_error = max(
        float(np.max(np.abs(row - sample)))
        for row, sample in zip(exact, sampled)
    )

    # --- Selections are engine-independent -----------------------------
    results = {
        engine: run_quest(
            tfim(4, steps=2),
            QuestConfig(**{**_FAST.__dict__, "noise_engine": engine}),
        )
        for engine in ("ptm", "density", "trajectories")
    }
    selection_sets = {_choices(result) for result in results.values()}
    assert len(selection_sets) == 1

    rows = [
        [f"trajectories T={TRAJECTORIES} x {ENSEMBLE_SIZE} circuits",
         f"{trajectory_seconds:.3f}", ""],
        ["ptm ensemble, cold cache", f"{ptm_cold_seconds:.3f}",
         f"{trajectory_seconds / ptm_cold_seconds:.1f}x"],
        ["ptm ensemble, warm cache", f"{ptm_seconds:.3f}",
         f"{speedup:.1f}x"],
    ]
    print_table(
        f"Noisy ensemble evaluation (TFIM-5, {ENSEMBLE_SIZE} members)",
        ["engine", "seconds", "speedup"],
        rows,
    )

    assert speedup >= SPEEDUP_FLOOR

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "circuit": "tfim(5, steps=2) + per-member rz",
                "ensemble_size": ENSEMBLE_SIZE,
                "trajectories": TRAJECTORIES,
                "array_backend": "numpy",
                "trajectory_seconds": trajectory_seconds,
                "ptm_cold_seconds": ptm_cold_seconds,
                "ptm_warm_seconds": ptm_seconds,
                "speedup": speedup,
                "speedup_floor": SPEEDUP_FLOOR,
                "compile_misses": compile_misses,
                "compile_hits": cache.hits,
                "ptm_vs_density_max_abs": density_gap,
                "trajectory_sampling_error": sampling_error,
                "selections_identical_across_engines": True,
            },
            indent=2,
        )
        + "\n"
    )
