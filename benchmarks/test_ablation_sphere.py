"""Ablation: epsilon-sphere variant sampling on/off.

DESIGN.md calls out sphere sampling as this reproduction's mechanism for
realizing the paper's "dissimilar approximations from multiple branches/
seeds" on laptop-scale blocks: without it, every low-CNOT candidate sits
at the same optimizer minimum and the selection engine terminates after
one sample (no dissimilar alternative exists).  This bench quantifies
that: sphere sampling yields strictly more selected samples and an
ensemble no worse than the single best circuit.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import BENCH_CONFIG, print_table

from repro import run_quest
from repro.algorithms import heisenberg
from repro.core import ensemble_distribution
from repro.metrics import tvd
from repro.sim import ideal_distribution


def _run(sphere_per_count: int):
    # Heisenberg at 3 Trotter steps: large enough (54 CNOTs, 4+ blocks)
    # that sample diversity is the binding constraint on selection.
    circuit = heisenberg(4, steps=3)
    config = replace(
        BENCH_CONFIG, sphere_variants_per_count=sphere_per_count
    )
    result = run_quest(circuit, config)
    truth = ideal_distribution(result.baseline)
    ensemble_tvd = tvd(truth, ensemble_distribution(result.circuits))
    return (
        len(result.circuits),
        float(sum(result.cnot_counts)) / len(result.cnot_counts),
        ensemble_tvd,
    )


def test_ablation_sphere_sampling(benchmark):
    rows = benchmark.pedantic(
        lambda: [("off", *_run(0)), ("on", *_run(4))],
        rounds=1,
        iterations=1,
    )
    print_table(
        "Ablation: epsilon-sphere sampling (Heisenberg-4 x3)",
        ["sphere", "samples", "mean_cnots", "ensemble_tvd"],
        [[s, n, f"{c:.1f}", f"{t:.4f}"] for s, n, c, t in rows],
    )
    off, on = rows
    # Sphere sampling unlocks strictly more dissimilar samples.
    assert on[1] > off[1]
    # Output quality stays in the same (low) regime.
    assert on[3] < 0.1
