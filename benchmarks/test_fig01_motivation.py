"""Fig. 1: motivation — Qiskit-compiled TFIM/Heisenberg on a Manila-like
device drifts far from the ground-truth magnetization curve.

Reproduces the shape of the paper's Fig. 1: the noisy magnetization fails
to track the ideal time evolution even with all compiler optimizations.
"""

from __future__ import annotations

from conftest import print_table, run_on_manila

from repro.algorithms import average_magnetization, heisenberg, tfim
from repro.sim import ideal_distribution

TIMESTEPS = [1, 2, 3, 4, 5, 6]


def _magnetization_series(builder):
    rows = []
    for steps in TIMESTEPS:
        circuit = builder(4, steps=steps)
        truth = average_magnetization(ideal_distribution(circuit), 4)
        noisy = average_magnetization(run_on_manila(circuit), 4)
        rows.append([steps, f"{truth:+.3f}", f"{noisy:+.3f}"])
    return rows


def test_fig01_tfim_motivation(benchmark):
    rows = benchmark.pedantic(
        lambda: _magnetization_series(tfim), rounds=1, iterations=1
    )
    print_table(
        "Fig. 1(a): TFIM-4 average magnetization (ground truth vs Qiskit on Manila)",
        ["step", "ground_truth", "qiskit_manila"],
        rows,
    )
    # The noisy curve is pulled towards zero magnetization (mixing) and
    # deviates from the ground truth at later timesteps.
    late_truth = float(rows[-1][1])
    late_noisy = float(rows[-1][2])
    assert abs(late_noisy) < abs(late_truth)


def test_fig01_heisenberg_motivation(benchmark):
    rows = benchmark.pedantic(
        lambda: _magnetization_series(heisenberg), rounds=1, iterations=1
    )
    print_table(
        "Fig. 1(b): Heisenberg-4 average magnetization (ground truth vs Qiskit on Manila)",
        ["step", "ground_truth", "qiskit_manila"],
        rows,
    )
    errors = [abs(float(r[1]) - float(r[2])) for r in rows]
    # Deep Heisenberg circuits (hundreds of CNOTs after routing) lose the
    # signal: substantial error at the deepest timesteps.
    assert max(errors[2:]) > 0.1
