"""Smoke benchmark: what certification costs when off — and when on.

Runs the same 5-qubit Trotterized TFIM circuit through QUEST with
certification disabled (the default) and enabled, and records the
timings to ``BENCH_verify.json`` at the repo root.  Asserts the
certifier's two core claims:

* the disabled path is effectively free: wall-clock overhead versus the
  median of repeated baseline runs stays under 5%, and
* certification is an observer, never a participant — enabling it
  produces bit-identical selections, and the honest pipeline output
  certifies clean.

The enabled-path cost is recorded but not asserted: it scales with the
number of kept approximations and the exact-diff dimension, and the
contract is only that runs which *don't* ask for certification don't
pay for it.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from conftest import print_table

from repro import QuestConfig, run_quest
from repro.algorithms import tfim

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_verify.json"

#: Mirrors BENCH_observability's scale: heavy enough that synthesis
#: dominates and the certification stage is measured against real work.
SCALING_CONFIG = dict(
    seed=2022,
    max_samples=4,
    max_block_qubits=2,
    threshold_per_block=0.25,
    max_layers_per_block=3,
    solutions_per_layer=3,
    instantiation_starts=2,
    max_optimizer_iterations=120,
    annealing_maxiter=80,
    block_time_budget=20.0,
    sphere_variants_per_count=2,
    cache=False,  # every run does full synthesis work
)

#: Disabled-path overhead budget (fractional).  With ``certify=False``
#: the pipeline takes a single branch past the certification stage, so
#: 5% is generous headroom for scheduler noise.
MAX_DISABLED_OVERHEAD = 0.05


def _timed_run(circuit, **overrides):
    config = QuestConfig(**{**SCALING_CONFIG, **overrides})
    start = time.perf_counter()
    result = run_quest(circuit, config)
    return result, time.perf_counter() - start


def _signature(result):
    return [
        result.cnot_counts,
        result.selection.bounds,
        [tuple(int(i) for i in c) for c in result.selection.choices],
    ]


def test_verify_overhead_smoke():
    circuit = tfim(5, steps=2)

    # Warm-up absorbs one-time costs (imports, numpy dispatch caches) so
    # they don't land on whichever mode happens to run first.
    _timed_run(circuit)

    baseline_walls = []
    baseline = None
    for _ in range(3):
        baseline, wall = _timed_run(circuit)
        baseline_walls.append(wall)
    baseline_wall = statistics.median(baseline_walls)

    # Median of 3 on both sides: at this circuit size a run is well
    # under a second, so a single sample is scheduler noise.
    disabled_walls = []
    disabled = None
    for _ in range(3):
        disabled, wall = _timed_run(circuit, certify=False)
        disabled_walls.append(wall)
    disabled_wall = statistics.median(disabled_walls)
    certified, certified_wall = _timed_run(
        circuit, certify=True, certify_candidates=True
    )

    disabled_overhead = disabled_wall / baseline_wall - 1.0
    certify_stage = certified.timings.certify_seconds
    rows = [
        ["baseline (median of 3)", f"{baseline_wall:.2f}", "-", "-"],
        ["certify off (median of 3)", f"{disabled_wall:.2f}",
         f"{disabled_overhead * 100:+.2f}%", "-"],
        ["certify on", f"{certified_wall:.2f}",
         f"{(certified_wall / baseline_wall - 1.0) * 100:+.2f}%",
         f"{certify_stage:.3f}s stage"],
    ]
    print_table(
        "Certification overhead (TFIM-5, 2 Trotter steps)",
        ["mode", "wall s", "vs baseline", "certify"],
        rows,
    )

    # Certification is an observer, never a participant.
    signature = _signature(baseline)
    assert _signature(disabled) == signature
    assert _signature(certified) == signature

    # A run that doesn't ask for certification doesn't pay for it.
    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        f"certify-off overhead {disabled_overhead:.1%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%}"
    )
    assert disabled.timings.certify_seconds == 0.0
    assert disabled.certified is None

    # The certified run actually certified, and cleanly.
    assert certified.certified is True
    assert len(certified.certifications) == len(certified.circuits)
    assert certify_stage > 0.0

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "circuit": "tfim(5, steps=2)",
                "blocks": len(baseline.blocks),
                "baseline_seconds": baseline_wall,
                "baseline_runs_seconds": baseline_walls,
                "certify_off_seconds": disabled_wall,
                "certify_off_runs_seconds": disabled_walls,
                "certify_off_overhead_fraction": disabled_overhead,
                "certify_on_seconds": certified_wall,
                "certify_stage_seconds": certify_stage,
                "certifications": [
                    report.to_dict() for report in certified.certifications
                ],
                "original_cnot_count": baseline.original_cnot_count,
                "selected_cnot_counts": baseline.cnot_counts,
            },
            indent=1,
        )
    )
