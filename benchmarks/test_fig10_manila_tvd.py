"""Fig. 10: TVD from ground truth on the (fake) Manila device — Qiskit
alone vs QUEST + Qiskit.

Paper shape: raw TVDs are sizeable on the noisy device, and QUEST +
Qiskit cuts the TVD, by up to tens of points on CNOT-heavy algorithms
(the paper's TFIM drops 0.35 -> 0.08).
"""

from __future__ import annotations

import numpy as np
from conftest import print_table, quest_manila_distribution, run_on_manila

from repro.metrics import tvd
from repro.sim import ideal_distribution

#: Algorithms that fit the 5-qubit Manila device.
MANILA_ALGOS = [
    "adder_4",
    "heisenberg_4",
    "hlf_4",
    "qft_4",
    "qaoa_4",
    "tfim_4",
    "vqe_4",
    "xy_4",
]


def _collect(quest_cache):
    rows = []
    for name in MANILA_ALGOS:
        result = quest_cache.result(name)
        truth = ideal_distribution(result.baseline)
        qiskit_tvd = tvd(truth, run_on_manila(result.baseline))
        quest_tvd = tvd(truth, quest_manila_distribution(result))
        rows.append((name, qiskit_tvd, quest_tvd))
    return rows


def test_fig10_manila_tvd(benchmark, quest_cache):
    rows = benchmark.pedantic(
        lambda: _collect(quest_cache), rounds=1, iterations=1
    )
    print_table(
        "Fig. 10: TVD from ground truth on fake Manila",
        ["algorithm", "qiskit_tvd", "quest+qiskit_tvd", "delta"],
        [
            [n, f"{q:.4f}", f"{u:.4f}", f"{q - u:+.4f}"]
            for n, q, u in rows
        ],
    )
    deltas = [q - u for _, q, u in rows]
    # QUEST + Qiskit reduces the device TVD for the CNOT-heavy circuits
    # and on average across the suite.
    assert float(np.mean(deltas)) > 0.0
    heavy = {n: (q, u) for n, q, u in rows}
    for name in ("heisenberg_4", "xy_4", "tfim_4"):
        qiskit_tvd, quest_tvd = heavy[name]
        assert quest_tvd < qiskit_tvd, name
