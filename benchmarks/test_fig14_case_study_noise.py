"""Fig. 14: the TFIM/Heisenberg case study across simulated noise levels
(1 %, 0.5 %, 0.1 %).

Paper shape: QUEST's output distance shrinks as hardware noise drops
(TFIM), and for Heisenberg QUEST stays close to ground truth even at the
1 % level thanks to its huge CNOT reduction.
"""

from __future__ import annotations

from conftest import BENCH_CONFIG, print_table

from repro import run_quest
from repro.algorithms import average_magnetization, heisenberg, tfim
from repro.metrics import average_distributions
from repro.noise import NoiseModel, run_density
from repro.sim import ideal_distribution
from repro.transpile import transpile

LEVELS = [0.01, 0.005, 0.001]
STEPS = 3


def _magnetization_vs_noise(builder):
    circuit = builder(4, steps=STEPS)
    truth = average_magnetization(ideal_distribution(circuit), 4)
    result = run_quest(circuit, BENCH_CONFIG)
    quest_circuits = [
        transpile(c, optimization_level=3, rng=0).circuit
        for c in result.circuits
    ]
    rows = []
    for level in LEVELS:
        model = NoiseModel.from_noise_level(level)
        qiskit_mag = average_magnetization(
            run_density(
                transpile(result.baseline, optimization_level=3, rng=0).circuit,
                model,
            ),
            4,
        )
        quest_mag = average_magnetization(
            average_distributions(
                [run_density(c, model) for c in quest_circuits]
            ),
            4,
        )
        rows.append((level, truth, qiskit_mag, quest_mag))
    return rows


def test_fig14_tfim_noise_levels(benchmark):
    rows = benchmark.pedantic(
        lambda: _magnetization_vs_noise(tfim), rounds=1, iterations=1
    )
    print_table(
        "Fig. 14(a): TFIM-4 magnetization vs noise level",
        ["noise", "ground_truth", "qiskit", "quest+qiskit"],
        [
            [f"{lv:.3f}", f"{t:+.3f}", f"{q:+.3f}", f"{u:+.3f}"]
            for lv, t, q, u in rows
        ],
    )
    errors = [abs(t - u) for _, t, _, u in rows]
    # QUEST's error shrinks (weakly) as the hardware noise decreases.
    assert errors[-1] <= errors[0] + 1e-6
    # And QUEST beats Qiskit wherever noise dominates (>= 0.5%); at the
    # 0.1% projection the residual approximation error of these small
    # circuits can exceed the tiny noise error (see EXPERIMENTS.md).
    for level, t, q, u in rows:
        if level >= 0.005:
            assert abs(t - u) <= abs(t - q) + 1e-9
        else:
            assert abs(t - u) <= abs(t - q) + 0.05


def test_fig14_heisenberg_high_noise(benchmark):
    rows = benchmark.pedantic(
        lambda: _magnetization_vs_noise(heisenberg), rounds=1, iterations=1
    )
    print_table(
        "Fig. 14(b): Heisenberg-4 magnetization vs noise level",
        ["noise", "ground_truth", "qiskit", "quest+qiskit"],
        [
            [f"{lv:.3f}", f"{t:+.3f}", f"{q:+.3f}", f"{u:+.3f}"]
            for lv, t, q, u in rows
        ],
    )
    # Paper: QUEST is close to ground truth even at 1% noise.
    level_1pct = rows[0]
    assert abs(level_1pct[1] - level_1pct[3]) < 0.15
    for level, t, q, u in rows:
        if level >= 0.005:
            assert abs(t - u) <= abs(t - q) + 1e-9
        else:
            assert abs(t - u) <= abs(t - q) + 0.05
