"""Fig. 13: TFIM/Heisenberg case study — magnetization time evolution on
the (fake) Manila device: ground truth vs Qiskit vs QUEST + Qiskit.

Each timestep is a separate circuit put through the full QUEST pipeline,
exactly as in the paper.  Paper shape: QUEST + Qiskit tracks the ground
truth magnetization much more closely than Qiskit alone, dramatically so
for Heisenberg (whose baseline circuits carry the most CNOTs).
"""

from __future__ import annotations

import numpy as np
from conftest import BENCH_CONFIG, print_table, quest_manila_distribution, run_on_manila

from repro import run_quest
from repro.algorithms import average_magnetization, heisenberg, tfim
from repro.sim import ideal_distribution

TIMESTEPS = [1, 2, 3, 4]


def _case_study(builder):
    rows = []
    for steps in TIMESTEPS:
        circuit = builder(4, steps=steps)
        truth = average_magnetization(ideal_distribution(circuit), 4)
        qiskit = average_magnetization(run_on_manila(circuit), 4)
        result = run_quest(circuit, BENCH_CONFIG)
        quest = average_magnetization(quest_manila_distribution(result), 4)
        rows.append((steps, truth, qiskit, quest))
    return rows


def _errors(rows):
    qiskit_err = [abs(t - q) for _, t, q, _ in rows]
    quest_err = [abs(t - u) for _, t, _, u in rows]
    return float(np.mean(qiskit_err)), float(np.mean(quest_err))


def test_fig13_tfim_case_study(benchmark):
    rows = benchmark.pedantic(
        lambda: _case_study(tfim), rounds=1, iterations=1
    )
    print_table(
        "Fig. 13(a): TFIM-4 magnetization on fake Manila",
        ["step", "ground_truth", "qiskit", "quest+qiskit"],
        [
            [s, f"{t:+.3f}", f"{q:+.3f}", f"{u:+.3f}"]
            for s, t, q, u in rows
        ],
    )
    qiskit_err, quest_err = _errors(rows)
    print(f"mean |error|: qiskit={qiskit_err:.3f} quest={quest_err:.3f}")
    assert quest_err < qiskit_err


def test_fig13_heisenberg_case_study(benchmark):
    rows = benchmark.pedantic(
        lambda: _case_study(heisenberg), rounds=1, iterations=1
    )
    print_table(
        "Fig. 13(b): Heisenberg-4 magnetization on fake Manila",
        ["step", "ground_truth", "qiskit", "quest+qiskit"],
        [
            [s, f"{t:+.3f}", f"{q:+.3f}", f"{u:+.3f}"]
            for s, t, q, u in rows
        ],
    )
    qiskit_err, quest_err = _errors(rows)
    print(f"mean |error|: qiskit={qiskit_err:.3f} quest={quest_err:.3f}")
    assert quest_err < qiskit_err
    # QUEST tracks the conserved Heisenberg magnetization closely —
    # less than half the Qiskit-only error.
    assert quest_err < 0.6 * qiskit_err
    assert quest_err < 0.15
