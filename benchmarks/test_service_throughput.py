"""Service throughput: concurrent clients against one live daemon.

Boots a :class:`~repro.service.server.QuestService` (dispatcher
concurrency 2, shared cache/registry substrate) and drives it with four
client threads submitting a 12-job mixed workload — a Trotter-family
sweep with deliberate duplicates, the shape of a parameter-sweep re-run
hitting a compilation service.  Records end-to-end submit→result
latency per job and writes throughput plus p50/p99 to
``BENCH_service.json`` at the repo root.

Asserted claims: every job lands ``done``, duplicate submissions reuse
substrate work (cache hits + in-flight joins > 0), no joiner strands,
and the daemon drains cleanly after the burst.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
from conftest import print_table

from repro import QuestConfig
from repro.algorithms import heisenberg, tfim, xy_model
from repro.circuits import circuit_to_qasm
from repro.exceptions import ServiceError
from repro.service import QuestService, ServiceClient

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

SERVICE_CONFIG = dict(
    seed=2022,
    max_samples=3,
    max_block_qubits=2,
    threshold_per_block=0.25,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    sphere_variants_per_count=2,
    block_time_budget=None,
)
MAX_CONCURRENCY = 2
CLIENTS = 4


def _workload() -> list[str]:
    sweep = [
        tfim(4, steps=2),
        tfim(4, steps=3),
        heisenberg(4, steps=2),
        xy_model(4, steps=2),
    ]
    # Each circuit submitted three times: the duplicate-heavy shape that
    # the shared cache + in-flight registry exist to collapse.
    return [circuit_to_qasm(c) for c in sweep * 3]


def test_service_throughput(tmp_path):
    sock_dir = tempfile.mkdtemp(dir="/tmp", prefix="qbench-")
    socket_path = str(Path(sock_dir) / "s.sock")
    config = QuestConfig(**SERVICE_CONFIG, workers=1, cache=True)
    service = QuestService(
        socket_path,
        tmp_path / "ledger",
        config=config,
        max_concurrency=MAX_CONCURRENCY,
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(service.run()), daemon=True
    )
    thread.start()
    probe = ServiceClient(socket_path)
    probe.wait_until_ready(timeout=30.0)

    workload = _workload()
    latencies: list[float] = []
    payloads: list[dict] = []
    lock = threading.Lock()

    def compile_one(qasm: str) -> None:
        client = ServiceClient(socket_path)
        start = time.perf_counter()
        payload = client.submit_and_wait(qasm, timeout=600.0)
        elapsed = time.perf_counter() - start
        with lock:
            latencies.append(elapsed)
            payloads.append(payload)

    try:
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            list(pool.map(compile_one, workload))
        wall = time.perf_counter() - start

        assert len(payloads) == len(workload)
        assert not any(p["degraded"] for p in payloads)
        reused = sum(p["cache_hits"] + p["dedup_joins"] for p in payloads)
        assert reused > 0, "duplicate submissions never shared work"

        status = probe.status()
        assert status["jobs_by_state"]["done"] == len(workload)
        assert status["stranded_joiners"] == 0

        throughput = len(workload) / wall
        p50 = float(np.percentile(latencies, 50))
        p99 = float(np.percentile(latencies, 99))
        print_table(
            f"Service throughput ({CLIENTS} clients, "
            f"{len(workload)} jobs, concurrency {MAX_CONCURRENCY})",
            ["metric", "value"],
            [
                ["wall s", f"{wall:.2f}"],
                ["throughput jobs/s", f"{throughput:.2f}"],
                ["latency p50 s", f"{p50:.2f}"],
                ["latency p99 s", f"{p99:.2f}"],
                ["substrate reuse (hits+joins)", reused],
            ],
        )
        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "workload": "tfim/heisenberg/xy_model(4) x3, 12 jobs",
                    "clients": CLIENTS,
                    "max_concurrency": MAX_CONCURRENCY,
                    "jobs": len(workload),
                    "wall_seconds": wall,
                    "throughput_jobs_per_second": throughput,
                    "latency_p50_seconds": p50,
                    "latency_p99_seconds": p99,
                    "substrate_reuse": reused,
                    "admitted": status["admitted"],
                    "rejected": status["rejected"],
                },
                indent=2,
            )
            + "\n"
        )
    finally:
        with contextlib.suppress(ServiceError):
            probe.shutdown()
        thread.join(timeout=60.0)
    assert not thread.is_alive()
