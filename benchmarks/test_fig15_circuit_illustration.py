"""Fig. 15: the circuit-level illustration of QUEST's reduction — deep
TFIM/Heisenberg evolution circuits collapse to a handful of CNOTs.

The paper shows a Heisenberg timestep going from 900 CNOTs to 11.  At
this bench's scale the deep-evolution analogue uses more Trotter steps
of the 4-spin models; the assertion is the *shape*: an order-of-
magnitude-class reduction on deep time-evolution circuits, because the
evolution unitary stays low-entangling however many steps compose it.
"""

from __future__ import annotations

from conftest import BENCH_CONFIG, print_table

from repro import run_quest
from repro.algorithms import heisenberg, tfim

DEEP_STEPS = {"tfim_4": (tfim, 8), "heisenberg_4": (heisenberg, 5)}


def _collect():
    rows = []
    for name, (builder, steps) in DEEP_STEPS.items():
        circuit = builder(4, steps=steps)
        result = run_quest(circuit, BENCH_CONFIG)
        rows.append(
            (
                name,
                steps,
                result.original_cnot_count,
                result.best_cnot_count,
                result.baseline.depth(),
                min(c.depth() for c in result.circuits),
            )
        )
    return rows


def test_fig15_deep_circuit_reduction(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    print_table(
        "Fig. 15: deep evolution circuits, Baseline vs best QUEST approximation",
        ["algorithm", "steps", "baseline_cnots", "quest_cnots",
         "baseline_depth", "quest_depth"],
        rows,
    )
    for name, _, baseline_cnots, quest_cnots, baseline_depth, quest_depth in rows:
        # Large reduction in CNOTs and in depth (fewer operation errors
        # and less decoherence, the Fig. 15 message).
        assert quest_cnots <= baseline_cnots // 3, name
        assert quest_depth < baseline_depth, name
