"""Selection-engine benchmark: batched scorer vs. the seed scalar loop.

Builds a 14-block TFIM-8 partition with a two-candidate pool per block
(the exact original plus a one-CNOT truncation), then:

* freezes the pre-vectorization selection engine — scalar objective with
  per-block Python sums, ``hs_distance`` pair-loop similarity tables,
  and the odometer exhaustive search — and runs it to completion;
* runs the vectorized engine (`evaluate_batch` + chunked enumeration)
  on the same pools and asserts the selected choice vectors are
  identical;
* times both scorers over the full 2^14-point search space and asserts
  the batched path delivers >= 10x objective-evaluation throughput.

Results are recorded to ``BENCH_selection.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import print_table

from repro.algorithms import tfim
from repro.circuits import Circuit
from repro.core.annealing import select_approximations
from repro.core.objective import SelectionObjective
from repro.core.pool import BlockPool, Candidate
from repro.core.similarity import are_similar
from repro.linalg import hs_distance
from repro.partition.scan import scan_partition
from repro.transpile.basis import lower_to_basis

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_selection.json"

MAX_SAMPLES = 4
THRESHOLD_PER_BLOCK = 0.2


# ----------------------------------------------------------------------
# Frozen seed selection engine (pre-vectorization implementation)
# ----------------------------------------------------------------------

def _seed_tables(pools):
    tables = []
    for pool in pools:
        candidates = [c.unitary for c in pool.candidates]
        original = pool.original_unitary
        count = len(candidates)
        to_original = np.array([hs_distance(c, original) for c in candidates])
        table = np.zeros((count, count), dtype=bool)
        for i in range(count):
            table[i, i] = True
            for j in range(i + 1, count):
                mutual = hs_distance(candidates[i], candidates[j])
                table[i, j] = table[j, i] = are_similar(
                    mutual, to_original[i], to_original[j]
                )
        tables.append(table)
    return tables


class _SeedObjective:
    """The seed's scalar objective: per-block loops, left-to-right sums."""

    def __init__(self, pools, threshold, original_cnot_count, weight=0.5):
        self.pools = pools
        self.threshold = threshold
        self.original_cnot_count = original_cnot_count
        self.weight = weight
        self.selected = []
        self.tables = _seed_tables(pools)
        self._cnots = [pool.cnot_counts() for pool in pools]
        self._distances = [pool.distances() for pool in pools]
        self.num_blocks = len(pools)
        self.evaluations = 0

    def choice_bound(self, choice):
        return float(
            sum(self._distances[b][choice[b]] for b in range(self.num_blocks))
        )

    def choice_cnot_count(self, choice):
        return int(
            sum(self._cnots[b][choice[b]] for b in range(self.num_blocks))
        )

    def _similarity_fraction(self, choice, prior):
        hits = sum(
            1
            for b in range(self.num_blocks)
            if self.tables[b][int(choice[b]), int(prior[b])]
        )
        return hits / self.num_blocks

    def __call__(self, choice):
        self.evaluations += 1
        choice = np.asarray(choice, dtype=int)
        if self.choice_bound(choice) > self.threshold:
            return 1.0
        c_norm = self.choice_cnot_count(choice) / self.original_cnot_count
        if not self.selected:
            return c_norm
        total = sum(
            self._similarity_fraction(choice, prior)
            for prior in self.selected
        )
        m = total / len(self.selected)
        return self.weight * m + (1.0 - self.weight) * c_norm


def _seed_exhaustive_minimum(objective, sizes):
    """The seed's odometer loop (block 0 increments fastest)."""
    best_value = float("inf")
    best_choice = None
    indices = np.zeros(len(sizes), dtype=int)
    while True:
        value = objective(indices)
        if value < best_value:
            best_value = value
            best_choice = indices.copy()
        position = 0
        while position < len(sizes):
            indices[position] += 1
            if indices[position] < sizes[position]:
                break
            indices[position] = 0
            position += 1
        if position == len(sizes):
            break
    return best_choice


def _seed_select(objective, sizes, max_samples):
    """The seed's sequential selection loop on the exhaustive path."""
    choices = []
    objective.selected.clear()
    for _ in range(max_samples):
        choice = _seed_exhaustive_minimum(objective, sizes)
        if objective.choice_bound(choice) > objective.threshold:
            if choices:
                break
            choice = np.zeros(len(sizes), dtype=int)
        if any(np.array_equal(choice, prior) for prior in choices):
            break
        choices.append(choice)
        objective.selected.append(choice)
    return choices


# ----------------------------------------------------------------------
# Pool construction (no LEAP: truncated blocks as cheap approximations)
# ----------------------------------------------------------------------

def _truncated_variant(circuit: Circuit) -> Circuit:
    """Prefix of ``circuit`` keeping all but its last CNOT."""
    kept = []
    cnots_seen = 0
    total = circuit.cnot_count()
    for op in circuit.operations:
        if op.name == "cx":
            cnots_seen += 1
            if cnots_seen == total:
                break
        kept.append(op)
    return Circuit(circuit.num_qubits, kept)


def _build_pools(blocks) -> list[BlockPool]:
    pools = []
    for block in blocks:
        original_unitary = block.unitary()
        pool = BlockPool(block=block, original_unitary=original_unitary)
        pool.candidates.append(
            Candidate(
                circuit=block.circuit,
                unitary=original_unitary,
                distance=0.0,
                cnot_count=block.circuit.cnot_count(),
            )
        )
        variant = _truncated_variant(block.circuit)
        unitary = variant.unitary()
        pool.candidates.append(
            Candidate(
                circuit=variant,
                unitary=unitary,
                distance=hs_distance(unitary, original_unitary),
                cnot_count=variant.cnot_count(),
            )
        )
        pools.append(pool)
    return pools


def test_selection_scaling_smoke():
    baseline = lower_to_basis(tfim(8, steps=2).without_measurements())
    blocks = scan_partition(baseline, 2)
    pools = _build_pools(blocks)
    num_blocks = len(pools)
    assert num_blocks >= 12
    sizes = [pool.size for pool in pools]
    space = int(np.prod(sizes))
    threshold = THRESHOLD_PER_BLOCK * num_blocks
    original_cnots = baseline.cnot_count()

    # --- Selected choices: frozen seed engine vs vectorized engine -----
    seed_objective = _SeedObjective(pools, threshold, original_cnots)
    start = time.perf_counter()
    seed_choices = _seed_select(seed_objective, sizes, MAX_SAMPLES)
    seed_select_seconds = time.perf_counter() - start

    objective = SelectionObjective(
        pools=pools, threshold=threshold, original_cnot_count=original_cnots
    )
    start = time.perf_counter()
    result = select_approximations(objective, max_samples=MAX_SAMPLES, seed=0)
    new_select_seconds = time.perf_counter() - start

    choices_identical = len(seed_choices) == len(result.choices) and all(
        np.array_equal(a, b) for a, b in zip(seed_choices, result.choices)
    )
    assert choices_identical

    # --- Objective-evaluation throughput: seed scalar loop vs batched --
    # Score the full search space with one prior selected, so the
    # similarity term is exercised alongside the bound and CNOT gathers.
    strides = np.concatenate(([1], np.cumprod(sizes[:-1])))
    ks = np.arange(space)
    all_choices = (ks[:, None] // strides[None, :]) % np.array(sizes)[None, :]

    prior = result.choices[0]
    seed_objective.selected = [prior]
    objective.selected = [prior]

    # Warm both paths (allocator/cache effects), then time: the scalar
    # loop once over the full space, the batched scorer best-of-3.
    for choice in all_choices[:64]:
        seed_objective(choice)
    objective.evaluate_batch(all_choices[:64])

    start = time.perf_counter()
    scalar_values = np.array(
        [seed_objective(choice) for choice in all_choices]
    )
    scalar_seconds = time.perf_counter() - start

    batched_seconds = np.inf
    for _ in range(3):
        start = time.perf_counter()
        batched_values = objective.evaluate_batch(all_choices)
        batched_seconds = min(batched_seconds, time.perf_counter() - start)
    throughput_speedup = scalar_seconds / batched_seconds

    assert np.array_equal(scalar_values, batched_values)

    rows = [
        ["seed scalar loop", f"{space}", f"{scalar_seconds:.3f}",
         f"{space / scalar_seconds:,.0f}", ""],
        ["evaluate_batch", f"{space}", f"{batched_seconds:.3f}",
         f"{space / batched_seconds:,.0f}", f"{throughput_speedup:.1f}x"],
        ["seed exhaustive selection", "", f"{seed_select_seconds:.3f}", "", ""],
        ["vectorized selection", "", f"{new_select_seconds:.3f}", "",
         f"{seed_select_seconds / new_select_seconds:.1f}x"],
    ]
    print_table(
        f"Selection engine (TFIM-8, {num_blocks} blocks, {space} points)",
        ["path", "points", "seconds", "evals/s", "speedup"],
        rows,
    )

    assert throughput_speedup >= 10.0

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "circuit": "tfim(8, steps=2), max_block_qubits=2",
                "num_blocks": num_blocks,
                "search_space": space,
                "threshold": threshold,
                "scalar_eval_seconds": scalar_seconds,
                "batched_eval_seconds": batched_seconds,
                "scalar_evals_per_second": space / scalar_seconds,
                "batched_evals_per_second": space / batched_seconds,
                "throughput_speedup": throughput_speedup,
                "seed_selection_seconds": seed_select_seconds,
                "vectorized_selection_seconds": new_select_seconds,
                "selection_speedup": seed_select_seconds / new_select_seconds,
                "selected_choices_identical": bool(choices_identical),
                "selected_cnot_counts": [
                    int(count) for count in result.cnot_counts
                ],
                "objective_evaluations": {
                    "scalar": result.scalar_evaluations,
                    "batched": result.batched_evaluations,
                },
            },
            indent=2,
        )
        + "\n"
    )
