"""Smoke benchmark: vectorized kernels vs. their scalar predecessors.

Times the two inner loops this layer vectorized — noisy trajectory
sampling and the instantiation cost/gradient — and records the numbers to
``BENCH_kernels.json`` at the repo root.  Asserts the layer's two core
claims:

* the batched trajectory engine is >= 5x faster than the scalar engine at
  T=1000 trajectories on a 5-qubit circuit, with identical output for a
  fixed seed (both engines consume the same pre-sampled error outcomes);
* the trace-only gradient path yields byte-identical L-BFGS results while
  beating the seed implementation (dense ``np.kron`` embeddings plus the
  full ``(num_params, dim, dim)`` gradient tensor), which is frozen below
  as the "before" reference.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import print_table
from scipy.optimize import minimize

from repro.algorithms import tfim
from repro.circuits import random_unitary
from repro.circuits.gates import gate_matrix
from repro.metrics import tvd
from repro.noise import NoiseModel, run_density, run_trajectories
from repro.synthesis import build_leap_ansatz
from repro.synthesis.instantiate import _cost_and_gradient

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

TRAJECTORIES = 1000

_PAULI = {
    "rx": np.array([[0, 1], [1, 0]], dtype=complex),
    "ry": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "rz": np.array([[1, 0], [0, -1]], dtype=complex),
}
_IDENTITIES = {k: np.eye(2**k, dtype=complex) for k in range(12)}


def _seed_embed(gate: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """The pre-vectorization one-qubit embedding (generic ``np.kron``)."""
    return np.kron(
        _IDENTITIES[num_qubits - 1 - qubit],
        np.kron(gate, _IDENTITIES[qubit]),
    )


def _seed_cost_and_gradient(params, ansatz, target_conj, dim):
    """Frozen copy of the seed's cost path: materializes the full
    ``(num_params, dim, dim)`` gradient tensor every call."""
    embeds = []
    for position, slot in enumerate(ansatz.slots):
        if slot.param_index is None:
            embeds.append(ansatz._fixed_embeds[position])
        else:
            gate = gate_matrix(slot.name, (float(params[slot.param_index]),))
            embeds.append(_seed_embed(gate, slot.qubits[0], ansatz.num_qubits))
    prefixes = [np.eye(dim, dtype=complex)]
    for embed in embeds:
        prefixes.append(embed @ prefixes[-1])
    unitary = prefixes[-1]
    gradient = np.zeros((ansatz.num_params, dim, dim), dtype=complex)
    suffix = np.eye(dim, dtype=complex)
    for position in range(len(ansatz.slots) - 1, -1, -1):
        slot = ansatz.slots[position]
        if slot.param_index is not None:
            theta = float(params[slot.param_index])
            derivative_gate = (
                -0.5j * _PAULI[slot.name] @ gate_matrix(slot.name, (theta,))
            )
            derivative_embed = _seed_embed(
                derivative_gate, slot.qubits[0], ansatz.num_qubits
            )
            gradient[slot.param_index] = (
                suffix @ derivative_embed @ prefixes[position]
            )
        suffix = suffix @ embeds[position]
    trace = np.sum(target_conj * unitary)
    magnitude = abs(trace)
    cost = 1.0 - magnitude / dim
    if magnitude < 1e-14:
        return cost, np.zeros(ansatz.num_params)
    phase = np.conj(trace) / magnitude
    dtraces = np.sum(target_conj[None, :, :] * gradient, axis=(1, 2))
    return cost, -np.real(phase * dtraces) / dim


def test_kernel_scaling_smoke():
    # --- Trajectory sampler: scalar vs batched -------------------------
    circuit = tfim(5, steps=2)
    noise = NoiseModel.from_noise_level(0.01)

    start = time.perf_counter()
    scalar = run_trajectories(
        circuit, noise, trajectories=TRAJECTORIES, rng=7, batched=False
    )
    scalar_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batched = run_trajectories(
        circuit, noise, trajectories=TRAJECTORIES, rng=7, batched=True
    )
    batched_seconds = time.perf_counter() - start
    trajectory_speedup = scalar_seconds / batched_seconds

    # Same seed, same pre-sampled outcomes: the engines must agree.
    assert np.allclose(scalar, batched, atol=1e-12)
    # And the sampler must agree with the exact density-matrix answer.
    density_tvd = tvd(run_density(circuit, noise), batched)
    assert density_tvd < 0.05

    # --- Instantiation gradient: seed path vs trace-only path ----------
    rng = np.random.default_rng(2022)
    ansatz = build_leap_ansatz(3, [(0, 1), (1, 2), (0, 2)])
    target = random_unitary(8, rng)
    target_conj = target.conj()
    x0 = rng.uniform(-np.pi, np.pi, ansatz.num_params)
    options = {"maxiter": 200, "ftol": 1e-15, "gtol": 1e-12}

    start = time.perf_counter()
    fit_seed = minimize(
        _seed_cost_and_gradient, x0, args=(ansatz, target_conj, 8),
        jac=True, method="L-BFGS-B", options=options,
    )
    seed_fit_seconds = time.perf_counter() - start
    start = time.perf_counter()
    fit_trace = minimize(
        _cost_and_gradient, x0, args=(ansatz, target_conj, 8),
        jac=True, method="L-BFGS-B", options=options,
    )
    trace_fit_seconds = time.perf_counter() - start
    instantiation_speedup = seed_fit_seconds / trace_fit_seconds

    # The optimizer must walk the exact same path: byte-identical result.
    assert np.array_equal(fit_seed.x, fit_trace.x)
    assert fit_seed.fun == fit_trace.fun

    rows = [
        ["trajectories T=1000, scalar", f"{scalar_seconds:.3f}", ""],
        ["trajectories T=1000, batched", f"{batched_seconds:.3f}",
         f"{trajectory_speedup:.1f}x"],
        ["instantiate, seed gradient", f"{seed_fit_seconds:.3f}", ""],
        ["instantiate, trace gradient", f"{trace_fit_seconds:.3f}",
         f"{instantiation_speedup:.1f}x"],
    ]
    print_table(
        "Vectorized kernels (TFIM-5 trajectories / 3q instantiation)",
        ["kernel", "seconds", "speedup"],
        rows,
    )

    assert trajectory_speedup >= 5.0
    assert instantiation_speedup > 1.0

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "trajectory_circuit": "tfim(5, steps=2)",
                "trajectories": TRAJECTORIES,
                "scalar_trajectory_seconds": scalar_seconds,
                "batched_trajectory_seconds": batched_seconds,
                "trajectory_speedup": trajectory_speedup,
                "trajectory_density_tvd": density_tvd,
                "instantiation_ansatz": "3 qubits, 3 CNOT layers",
                "seed_instantiation_seconds": seed_fit_seconds,
                "trace_instantiation_seconds": trace_fit_seconds,
                "instantiation_speedup": instantiation_speedup,
                "optimizer_results_identical": bool(
                    np.array_equal(fit_seed.x, fit_trace.x)
                ),
            },
            indent=2,
        )
        + "\n"
    )
