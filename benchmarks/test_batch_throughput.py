"""Batch compilation throughput: one shared substrate vs. 8 solo runs.

Compiles an 8-circuit Trotter-family sweep (TFIM / Heisenberg / XY at
two step counts, two instances each — the shape of a parameter sweep
re-run) two ways at ``workers=4``:

* **sequential** — eight independent :func:`repro.run_quest` calls,
  each paying its own worker pool, cache, and synthesis;
* **batch** — one :func:`repro.batch.run_quest_batch` call sharing the
  persistent pool, content-addressed cache, in-flight registry, and the
  shared-memory result transport across all eight circuits.

Records ``BENCH_batch.json`` at the repo root and asserts the batch
layer's three claims: per-circuit selections bit-identical to solo,
zero duplicate syntheses (every globally-unique block key dispatched
exactly once), and >= 2x wall-clock speedup.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import print_table

from repro import QuestConfig, run_quest
from repro.algorithms import heisenberg, tfim, xy_model
from repro.batch import run_quest_batch
from repro.core.quest import _draw_block_seeds
from repro.parallel.cache import content_key, entry_key
from repro.parallel.executor import leap_config_for_block
from repro.partition.scan import scan_partition
from repro.transpile.basis import lower_to_basis

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

#: 3-qubit blocks make each LEAP job heavy enough that synthesis (the
#: part the batch layer parallelizes and dedups) dominates the
#: GIL-bound parent-side work; annealing is kept deliberately light.
BATCH_CONFIG = dict(
    seed=2022,
    max_samples=3,
    max_block_qubits=3,
    threshold_per_block=0.25,
    max_layers_per_block=4,
    solutions_per_layer=3,
    instantiation_starts=2,
    max_optimizer_iterations=150,
    annealing_maxiter=40,
    block_time_budget=None,
    sphere_variants_per_count=2,
)
WORKERS = 4
WINDOW = 4


def _family():
    sweep = [
        tfim(4, steps=2),
        tfim(4, steps=3),
        heisenberg(4, steps=2),
        xy_model(4, steps=2),
    ]
    return sweep + [circuit.copy() for circuit in sweep]


def _signature(result):
    return {
        "choices": [
            tuple(int(i) for i in choice)
            for choice in result.selection.choices
        ],
        "cnot_counts": result.cnot_counts,
        "bounds": result.selection.bounds,
    }


def _planned_entry_keys(circuit, config):
    """The executor's planning recipe, replayed independently: the entry
    keys a solo run of ``circuit`` would synthesize (first occurrence of
    each content key claims its positional seed)."""
    blocks = scan_partition(
        lower_to_basis(circuit.without_measurements()),
        config.max_block_qubits,
    )
    drawn = _draw_block_seeds(
        np.random.default_rng(config.seed), len(blocks)
    )
    keys, first = [], {}
    for index, block in enumerate(blocks):
        if block.num_qubits == 1 or block.circuit.cnot_count() == 0:
            continue
        fingerprint = leap_config_for_block(
            block.circuit.cnot_count(), config, seed=None
        ).fingerprint()
        content = content_key(block.unitary(), fingerprint)
        keys.append(entry_key(content, first.setdefault(content, drawn[index])))
    return keys


def test_batch_throughput(tmp_path):
    sequential_config = QuestConfig(**BATCH_CONFIG, workers=WORKERS)
    batch_config = QuestConfig(
        **BATCH_CONFIG,
        workers=WORKERS,
        shm_transport=True,
        shm_min_bytes=1,
    )

    start = time.perf_counter()
    solo = [run_quest(circuit, sequential_config) for circuit in _family()]
    sequential_wall = time.perf_counter() - start

    start = time.perf_counter()
    batch = run_quest_batch(_family(), batch_config, window=WINDOW)
    batch_wall = time.perf_counter() - start
    speedup = sequential_wall / batch_wall

    # Expected dedup structure, computed independently of the runtime.
    per_circuit = [
        _planned_entry_keys(circuit, sequential_config)
        for circuit in _family()
    ]
    total_nontrivial = sum(len(keys) for keys in per_circuit)
    unique_global = len(set().union(*map(set, per_circuit)))
    expected_collisions = total_nontrivial - unique_global
    # Blocks that actually synthesized: planned jobs minus the planned
    # jobs that ended up adopting another circuit's in-flight result.
    synthesized = batch.cache_misses - batch.inflight_joins

    print_table(
        "Batch vs sequential (8-circuit Trotter family, 4 workers)",
        ["mode", "wall s", "synthesized", "dedup hits", "shm bytes"],
        [
            [
                "sequential x8",
                f"{sequential_wall:.2f}",
                sum(r.cache_misses for r in solo),
                sum(r.cache_hits + r.dedup_joins for r in solo),
                0,
            ],
            [
                "batch",
                f"{batch_wall:.2f}",
                synthesized,
                batch.cache_hits + batch.dedup_joins,
                batch.shm_bytes_saved,
            ],
            ["speedup", f"{speedup:.2f}x", "", "", ""],
        ],
    )

    # Bit-identical per-circuit selections.
    for got, want in zip(batch.results, solo):
        assert _signature(got) == _signature(want)
    # Zero duplicate syntheses: every globally-unique key exactly once.
    assert synthesized == unique_global
    # The dedup counters account for every expected collision.
    assert batch.cache_hits + batch.dedup_joins == expected_collisions
    assert expected_collisions > 0
    assert batch.shm_bytes_saved > 0
    assert batch.pools_created >= 1
    # The headline claim: >= 2x over sequential at 4 workers.
    assert speedup >= 2.0, f"batch speedup {speedup:.2f}x < 2x"

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "family": "tfim/heisenberg/xy_model(4), 8 circuits",
                "workers": WORKERS,
                "window": WINDOW,
                "sequential_seconds": sequential_wall,
                "batch_seconds": batch_wall,
                "speedup": speedup,
                "total_nontrivial_blocks": total_nontrivial,
                "unique_block_keys": unique_global,
                "blocks_synthesized": synthesized,
                "dedup_hits": batch.cache_hits + batch.dedup_joins,
                "inflight_joins": batch.inflight_joins,
                "cache_hits": batch.cache_hits,
                "shm_bytes_saved": batch.shm_bytes_saved,
                "pools_created": batch.pools_created,
                "pool_reuses": batch.pool_reuses,
            },
            indent=2,
        )
        + "\n"
    )
