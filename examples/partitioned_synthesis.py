"""Lower-level API tour: partition a wider circuit, synthesize one block,
and verify the Sec. 3.8 process-distance bound empirically.

Demonstrates the pieces `run_quest` composes — useful when embedding
QUEST into another toolchain (custom partitioners, remote synthesis
workers, alternative selection policies).

Run with: ``python examples/partitioned_synthesis.py``
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import xy_model
from repro.circuits import Circuit
from repro.core import verify_bound
from repro.linalg import hs_distance
from repro.partition import scan_partition, stitch_blocks
from repro.synthesis import LeapConfig, synthesize


def main() -> None:
    circuit = xy_model(num_spins=6, steps=1)
    print(f"input: {circuit.summary()}")

    blocks = scan_partition(circuit, max_block_qubits=3)
    print(f"scan partitioner produced {len(blocks)} blocks:")
    for block in blocks:
        print(
            f"  block {block.index}: qubits {block.qubits}, "
            f"{block.circuit.cnot_count()} CNOTs"
        )

    # Synthesize an approximation pool for the first multi-CNOT block.
    target_block = next(b for b in blocks if b.circuit.cnot_count() >= 2)
    report = synthesize(
        target_block.unitary(),
        LeapConfig(max_layers=4, seed=0, solutions_per_layer=3,
                   target_distance=0.15),
    )
    print(
        f"\nLEAP on block {target_block.index}: "
        f"{len(report.solutions)} solutions from "
        f"{report.instantiations} instantiations "
        f"({report.elapsed_seconds:.1f}s)"
    )
    for solution in report.solutions[:6]:
        print(f"  {solution.cnot_count} CNOTs -> distance {solution.distance:.4f}")

    # Swap an approximation in and verify the additive bound.
    chosen = min(
        (s for s in report.solutions if s.distance < 0.2),
        key=lambda s: s.cnot_count,
    )
    approx_blocks = [
        b.with_circuit(chosen.circuit) if b.index == target_block.index else b
        for b in blocks
    ]
    check = verify_bound(circuit, blocks, approx_blocks)
    print(
        f"\nbound check: actual full-circuit distance "
        f"{check.actual_distance:.4f} <= bound {check.upper_bound:.4f} "
        f"(holds: {check.holds}, tightness {check.tightness:.2f})"
    )

    stitched = stitch_blocks(approx_blocks, circuit.num_qubits)
    print(
        f"approximate circuit: {stitched.summary()} "
        f"(baseline {circuit.cnot_count()} CNOTs)"
    )


if __name__ == "__main__":
    main()
