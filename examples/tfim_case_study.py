"""The paper's case study (Figs. 1/13): TFIM magnetization time evolution
on a noisy 5-qubit linear device, comparing

* the ground truth (ideal simulation),
* the Baseline compiled with the Qiskit-like transpiler, and
* QUEST + transpiler, averaging the selected approximations.

Each timestep is a separate circuit put through the full QUEST pipeline.

Run with: ``python examples/tfim_case_study.py``
"""

from __future__ import annotations

from repro import QuestConfig, run_quest, transpile
from repro.algorithms import average_magnetization, tfim
from repro.metrics import average_distributions
from repro.noise import fake_manila, run_density
from repro.sim import ideal_distribution
from repro.sim.readout import logical_distribution

CONFIG = QuestConfig(
    seed=1,
    max_samples=6,
    threshold_per_block=0.15,
    max_layers_per_block=5,
    block_time_budget=15.0,
)
TIMESTEPS = range(1, 5)
NUM_SPINS = 4


def run_on_device(circuit, backend):
    """Compile to the device and return the noisy logical distribution."""
    prepared = circuit.copy()
    prepared.measure_all()
    compiled = transpile(prepared, backend=backend, optimization_level=2)
    physical = run_density(compiled.circuit, backend.noise)
    return logical_distribution(compiled.circuit, physical)[
        : 2**circuit.num_qubits
    ]


def main() -> None:
    backend = fake_manila()
    print(f"device: {backend.name} (CX error {backend.noise.two_qubit_error:.1%})")
    print(f"{'step':>4} {'truth':>8} {'qiskit':>8} {'quest':>8} {'cnots':>12}")
    for steps in TIMESTEPS:
        circuit = tfim(NUM_SPINS, steps=steps)
        truth = average_magnetization(ideal_distribution(circuit), NUM_SPINS)
        qiskit_mag = average_magnetization(
            run_on_device(circuit, backend), NUM_SPINS
        )
        result = run_quest(circuit, CONFIG)
        quest_dist = average_distributions(
            [run_on_device(c, backend) for c in result.circuits]
        )
        quest_mag = average_magnetization(quest_dist, NUM_SPINS)
        cnots = f"{result.original_cnot_count}->{sorted(result.cnot_counts)}"
        print(
            f"{steps:>4} {truth:>+8.3f} {qiskit_mag:>+8.3f} "
            f"{quest_mag:>+8.3f} {cnots:>12}"
        )


if __name__ == "__main__":
    main()
