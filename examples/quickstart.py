"""Quickstart: approximate a TFIM evolution circuit with QUEST.

Runs the full pipeline — scan partitioning, LEAP approximate synthesis,
dual-annealing selection — on a 4-spin transverse-field Ising circuit,
then compares the ensemble's ideal output to the ground truth.

Run with: ``python examples/quickstart.py``
"""

from __future__ import annotations

from repro import QuestConfig, ensemble_distribution, run_quest, tvd
from repro.algorithms import tfim
from repro.sim import ideal_distribution


def main() -> None:
    circuit = tfim(num_spins=4, steps=2)
    print(f"input circuit : {circuit.summary()}")

    config = QuestConfig(
        seed=0,
        max_samples=8,
        threshold_per_block=0.15,
        max_layers_per_block=5,
        block_time_budget=20.0,
    )
    result = run_quest(circuit, config)

    print(f"QUEST result  : {result.summary()}")
    print(
        "timings       : partition %.2fs, synthesis %.2fs, annealing %.2fs"
        % (
            result.timings.partition_seconds,
            result.timings.synthesis_seconds,
            result.timings.annealing_seconds,
        )
    )
    for index, (circ, bound) in enumerate(
        zip(result.circuits, result.selection.bounds)
    ):
        print(
            f"  approximation {index}: {circ.cnot_count()} CNOTs, "
            f"process-distance bound {bound:.3f}"
        )

    ground_truth = ideal_distribution(result.baseline)
    ensemble = ensemble_distribution(result.circuits)
    print(f"ideal-output TVD vs ground truth: {tvd(ground_truth, ensemble):.4f}")


if __name__ == "__main__":
    main()
