"""Noise projection (Figs. 11/14): how QUEST's advantage evolves as
hardware error rates fall from today's ~1% to a projected 0.1%.

Compares the noisy-output TVD of the Baseline, the Qiskit-like
transpiler, and the QUEST ensemble at three Pauli noise levels.

Run with: ``python examples/noise_projection.py``
"""

from __future__ import annotations

from repro import QuestConfig, run_quest, transpile, tvd
from repro.algorithms import heisenberg
from repro.metrics import average_distributions
from repro.noise import NoiseModel, run_density
from repro.sim import ideal_distribution

LEVELS = [0.01, 0.005, 0.001]


def main() -> None:
    circuit = heisenberg(num_spins=4, steps=2)
    truth = ideal_distribution(circuit)
    result = run_quest(
        circuit,
        QuestConfig(seed=5, threshold_per_block=0.2, block_time_budget=15.0),
    )
    print(f"circuit: {circuit.summary()}")
    print(f"QUEST  : {result.summary()}\n")

    # Compare at the same gate granularity: the baseline is the circuit
    # lowered to the {rotation, CX} basis (a raw RZZ counts as one noisy
    # two-qubit event but costs two CNOTs on hardware).
    baseline_circuit = transpile(circuit, optimization_level=0).circuit
    qiskit_circuit = transpile(circuit, optimization_level=3).circuit
    quest_circuits = [
        transpile(c, optimization_level=3).circuit for c in result.circuits
    ]

    print(f"{'noise':>7} {'baseline':>9} {'qiskit':>9} {'quest':>9}")
    for level in LEVELS:
        model = NoiseModel.from_noise_level(level)
        baseline_tvd = tvd(truth, run_density(baseline_circuit, model))
        qiskit_tvd = tvd(truth, run_density(qiskit_circuit, model))
        quest_tvd = tvd(
            truth,
            average_distributions(
                [run_density(c, model) for c in quest_circuits]
            ),
        )
        print(
            f"{level:>7.3f} {baseline_tvd:>9.4f} {qiskit_tvd:>9.4f} "
            f"{quest_tvd:>9.4f}"
        )


if __name__ == "__main__":
    main()
